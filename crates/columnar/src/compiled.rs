//! Compile-once predicates for the vectorized execution pipeline.
//!
//! [`CompiledPredicate::compile`] resolves a [`Predicate`] against a
//! [`Schema`] exactly once per query: column names become column indices,
//! literals are type-checked and widened to the column's comparison type,
//! `BETWEEN` becomes a one-pass range node, and type mismatches become lazy
//! error nodes that preserve the scalar oracle's semantics (a mismatching
//! literal only errors when a non-NULL row exists). Evaluation then runs the
//! typed tight-loop kernels from [`crate::kernels`] over the raw column
//! vectors.
//!
//! Evaluation itself is *chunked*: the predicate is evaluated over a
//! [`MatchMask`] — one `u64` of match bits per 64-row chunk, word-aligned
//! with the validity bitmaps. Leaves refine the running mask in place with
//! the branchless `mask_*` kernels (zero candidate words are skipped, so
//! conjunction refinement is wordwise intersection, MonetDB-style); Or/Not
//! combine whole masks with single AND/OR/ANDNOT sweeps; and the surviving
//! bits stream into the terminal [`SelectionSink`] through
//! [`SelectionSink::accept_word`] in ascending row order, which is what
//! keeps the fused count/moments/weighted folds bit-identical to the scalar
//! oracle. String predicates over dictionary-encoded Utf8 columns are
//! translated into integer code ranges ([`DictPred`]) at dispatch time, so
//! their scans are pure integer compares.
//!
//! The previous row-at-a-time tier (candidate lists, one `is_valid` test
//! per row) is retained behind the `*_rowwise` entry points as the
//! benchmark baseline the chunked tier is measured against.
//!
//! Semantics match `Predicate::evaluate` (the scalar oracle) with one
//! documented exception: a NaN stored in a Float64 *cell* is rejected lazily
//! — only when a kernel actually visits that row as a live candidate —
//! whereas the oracle's full-column scans always visit it. Candidate
//! refinement can therefore skip a poisoned row that a full scan would have
//! rejected. NaN data is out of contract; NaN *constants* are handled with
//! full oracle parity.

use crate::column::Column;
use crate::error::{ColumnarError, Result};
use crate::expr::{CompareOp, Predicate};
use crate::kernels::{
    any_valid, mask_all, mask_cmp_bool, mask_cmp_f64, mask_cmp_i64, mask_cmp_i64_f64, mask_cmp_str,
    mask_dict, mask_is_not_null, mask_is_null, mask_range_bool, mask_range_f64, mask_range_i64,
    mask_range_str, scan_all, scan_cmp_bool, scan_cmp_f64, scan_cmp_i64, scan_cmp_i64_f64,
    scan_cmp_str, scan_dict, scan_is_not_null, scan_is_null, scan_range_bool, scan_range_f64,
    scan_range_i64, scan_range_str, AggSource, CountSink, DictPred, MatchMask, MomentSink,
    MomentSketch, NumBound, ScanDomain, SelectionSink, WeightedMomentSink,
};
use crate::partition::Partitioning;
use crate::schema::SchemaRef;
use crate::selection::SelectionVector;
use crate::table::Table;
use crate::value::{DataType, Value};
use sciborq_stats::WeightedMomentSketch;
use std::sync::Arc;

/// Measured scan work performed by a compiled evaluation.
///
/// `rows_visited` counts every row position a kernel pass actually touched;
/// with candidate refinement, later predicates of a conjunction visit fewer
/// rows, so this is *measured* work, not `columns × row_count`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Total row positions visited across all kernel passes.
    pub rows_visited: u64,
}

impl ScanStats {
    #[inline]
    fn visit(&mut self, rows: usize) {
        self.rows_visited += rows as u64;
    }

    /// Fold another pass's (or shard's) measured work into this total.
    pub fn merge(&mut self, other: &ScanStats) {
        self.rows_visited += other.rows_visited;
    }
}

/// A compiled predicate node. Column indices are bound and constants are
/// pre-widened, so evaluation needs no name resolution and no `Value`
/// materialisation.
#[derive(Debug, Clone, PartialEq)]
enum Node {
    /// Matches every row.
    All,
    /// Matches no row.
    Nothing,
    /// Int64 column vs integer literal: exact 64-bit comparison.
    CmpI64 {
        col: usize,
        op: CompareOp,
        bound: i64,
    },
    /// Int64 column vs float literal: cells widened per row.
    CmpI64F {
        col: usize,
        op: CompareOp,
        bound: f64,
    },
    /// Float64 column vs numeric literal (widened at compile time).
    CmpF64 {
        col: usize,
        op: CompareOp,
        bound: f64,
    },
    /// Bool column vs boolean literal.
    CmpBool {
        col: usize,
        op: CompareOp,
        bound: bool,
    },
    /// Utf8 column vs string literal (compared by reference).
    CmpStr {
        col: usize,
        op: CompareOp,
        bound: String,
    },
    /// One-pass inclusive range over an Int64 column.
    RangeI64 {
        col: usize,
        low: NumBound,
        high: NumBound,
    },
    /// One-pass inclusive range over a Float64 column.
    RangeF64 { col: usize, low: f64, high: f64 },
    /// One-pass inclusive range over a Utf8 column.
    RangeStr {
        col: usize,
        low: String,
        high: String,
    },
    /// One-pass inclusive range over a Bool column.
    RangeBool { col: usize, low: bool, high: bool },
    /// `column IS NULL`.
    IsNull { col: usize },
    /// `column IS NOT NULL`.
    IsNotNull { col: usize },
    /// A literal whose type cannot be compared against the column (or an
    /// unordered NaN literal): errors as soon as any non-NULL row exists in
    /// the column, otherwise selects nothing — the oracle's lazy mismatch
    /// semantics.
    ErrOnValid { col: usize, found: &'static str },
    /// Conjunction, executed with candidate-list refinement.
    And(Vec<Node>),
    /// Disjunction (children evaluated over the same domain, results
    /// unioned).
    Or(Vec<Node>),
    /// Negation (complement within the current domain).
    Not(Box<Node>),
}

/// A predicate compiled against a schema, ready for vectorized evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPredicate {
    schema: SchemaRef,
    root: Node,
}

impl CompiledPredicate {
    /// Compile a predicate against a schema. Column lookups happen here,
    /// once; evaluation only indexes.
    pub fn compile(predicate: &Predicate, schema: &SchemaRef) -> Result<Self> {
        let root = compile_node(predicate, schema)?;
        Ok(CompiledPredicate {
            schema: Arc::clone(schema),
            root,
        })
    }

    /// The schema this predicate was compiled against.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Whether the predicate can run against tables with this schema.
    pub fn matches_schema(&self, schema: &SchemaRef) -> bool {
        Arc::ptr_eq(&self.schema, schema) || self.schema.fields() == schema.fields()
    }

    fn check_table(&self, table: &Table) -> Result<()> {
        if self.matches_schema(table.schema()) {
            Ok(())
        } else {
            Err(ColumnarError::SchemaMismatch(format!(
                "predicate compiled against {} cannot run on table {} with schema {}",
                self.schema,
                table.name(),
                table.schema()
            )))
        }
    }

    /// Evaluate to a selection vector (vectorized equivalent of
    /// `Predicate::evaluate`).
    pub fn evaluate(&self, table: &Table) -> Result<SelectionVector> {
        self.evaluate_with_stats(table).map(|(sel, _)| sel)
    }

    /// Evaluate to a selection vector, also reporting measured scan work.
    pub fn evaluate_with_stats(&self, table: &Table) -> Result<(SelectionVector, ScanStats)> {
        self.check_table(table)?;
        let mut stats = ScanStats::default();
        let mut rows: Vec<usize> = Vec::new();
        self.run_fused(
            table,
            ScanDomain::Full(table.row_count()),
            &mut rows,
            &mut stats,
        )?;
        Ok((SelectionVector::from_sorted_rows(rows), stats))
    }

    /// Fused filter+count: the number of matching rows, without
    /// materialising a selection vector.
    pub fn count_matches(&self, table: &Table) -> Result<(usize, ScanStats)> {
        self.check_table(table)?;
        let mut stats = ScanStats::default();
        let mut sink = CountSink::default();
        self.run_fused(
            table,
            ScanDomain::Full(table.row_count()),
            &mut sink,
            &mut stats,
        )?;
        Ok((sink.0, stats))
    }

    /// Fused filter+aggregate: stream the aggregated column's values of
    /// every matching row into a [`MomentSketch`] in a single pass, without
    /// materialising a selection vector.
    ///
    /// `column` must be numeric (Int64 or Float64).
    pub fn filter_moments(&self, table: &Table, column: &str) -> Result<(MomentSketch, ScanStats)> {
        self.check_table(table)?;
        let source = numeric_source(table, column)?;
        let mut stats = ScanStats::default();
        let mut sink = MomentSink::new(source);
        self.run_fused(
            table,
            ScanDomain::Full(table.row_count()),
            &mut sink,
            &mut stats,
        )?;
        Ok((sink.sketch, stats))
    }

    /// Fused weighted filter+count for Hansen–Hurwitz estimation: every
    /// matching row contributes `1.0` expanded by its single-draw selection
    /// probability, accumulated into a [`WeightedMomentSketch`] in a single
    /// pass — no selection vector, no observation vector.
    ///
    /// `probabilities` must hold one probability per table row (the
    /// impression's cached selection-probability slice).
    pub fn count_weighted(
        &self,
        table: &Table,
        probabilities: &[f64],
    ) -> Result<(WeightedMomentSketch, ScanStats)> {
        self.check_table(table)?;
        check_probabilities(table, probabilities)?;
        let mut stats = ScanStats::default();
        let mut sink = WeightedMomentSink::counting(probabilities);
        self.run_fused(
            table,
            ScanDomain::Full(table.row_count()),
            &mut sink,
            &mut stats,
        )?;
        Ok((sink.sketch, stats))
    }

    /// Fused weighted filter+aggregate: stream every matching row's value of
    /// `column`, expanded by its selection probability, into a
    /// [`WeightedMomentSketch`] in a single pass (including through the
    /// candidate-list refinement of conjunctions — the terminal conjunct
    /// pushes straight into the weighted sink).
    ///
    /// `column` must be numeric (Int64 or Float64); NULL values only bump
    /// the sketch's matched count.
    pub fn filter_weighted_moments(
        &self,
        table: &Table,
        column: &str,
        probabilities: &[f64],
    ) -> Result<(WeightedMomentSketch, ScanStats)> {
        self.check_table(table)?;
        check_probabilities(table, probabilities)?;
        let source = numeric_source(table, column)?;
        let mut stats = ScanStats::default();
        let mut sink = WeightedMomentSink::new(source, probabilities);
        self.run_fused(
            table,
            ScanDomain::Full(table.row_count()),
            &mut sink,
            &mut stats,
        )?;
        Ok((sink.sketch, stats))
    }

    /// Sharded [`CompiledPredicate::count_weighted`]. Like
    /// [`CompiledPredicate::filter_moments_partitioned`], the *filter* fans
    /// out across shard workers and the per-shard match lists are folded
    /// into one sketch on the calling thread in ascending shard order —
    /// global row order — so every accumulated expansion sum is
    /// **bit-identical** to the serial kernel (float addition is not
    /// associative; merging per-shard float accumulators could not guarantee
    /// that).
    pub fn count_weighted_partitioned(
        &self,
        table: &Table,
        probabilities: &[f64],
        parts: &Partitioning,
    ) -> Result<(WeightedMomentSketch, Vec<ScanStats>)> {
        self.check_partitioning(table, parts)?;
        check_probabilities(table, probabilities)?;
        let mut sink = WeightedMomentSink::counting(probabilities);
        let stats = self.replay_shards_into(table, parts, &mut sink)?;
        Ok((sink.sketch, stats))
    }

    /// Sharded [`CompiledPredicate::filter_weighted_moments`], with the same
    /// fixed shard-order fold (and therefore the same bit-identity
    /// guarantee) as [`CompiledPredicate::count_weighted_partitioned`].
    pub fn filter_weighted_moments_partitioned(
        &self,
        table: &Table,
        column: &str,
        probabilities: &[f64],
        parts: &Partitioning,
    ) -> Result<(WeightedMomentSketch, Vec<ScanStats>)> {
        self.check_partitioning(table, parts)?;
        check_probabilities(table, probabilities)?;
        let source = numeric_source(table, column)?;
        let mut sink = WeightedMomentSink::new(source, probabilities);
        let stats = self.replay_shards_into(table, parts, &mut sink)?;
        Ok((sink.sketch, stats))
    }

    /// Fan the filter out over the shards of `parts`, then replay the
    /// matching rows into `sink` in ascending shard order (= global row
    /// order): the shared tail of the partitioned fused-aggregate paths.
    fn replay_shards_into<S: SelectionSink>(
        &self,
        table: &Table,
        parts: &Partitioning,
        sink: &mut S,
    ) -> Result<Vec<ScanStats>> {
        let shards = self.for_each_shard(parts, |domain| {
            let mut stats = ScanStats::default();
            let mut rows: Vec<usize> = Vec::new();
            self.run_fused(table, domain, &mut rows, &mut stats)?;
            Ok((rows, stats))
        })?;
        let mut stats = Vec::with_capacity(shards.len());
        for (rows, shard_stats) in shards {
            for row in rows {
                sink.accept(row);
            }
            stats.push(shard_stats);
        }
        Ok(stats)
    }

    /// Run the predicate over `base` through the chunked mask evaluator:
    /// seed a [`MatchMask`] covering the base rows, refine it word-at-a-time
    /// through every node, and stream the surviving bits into `sink` in
    /// ascending row order. `base` is the full table for the single-threaded
    /// path and one shard's row range (or one serial batch) for the
    /// partitioned and multi-scan paths.
    fn run_fused<S: SelectionSink>(
        &self,
        table: &Table,
        base: ScanDomain,
        sink: &mut S,
        stats: &mut ScanStats,
    ) -> Result<()> {
        let (start, end) = match base {
            ScanDomain::Full(len) => (0, len),
            ScanDomain::Range { start, end } => (start, end.max(start)),
            // candidate-list domains only arise inside the rowwise tier
            ScanDomain::Candidates(_) => return self.run_fused_rowwise(table, base, sink, stats),
        };
        let mut mask = MatchMask::coverage(start, end);
        refine_node(&self.root, table, &mut mask, stats)?;
        mask.emit(sink);
        Ok(())
    }

    /// Row-at-a-time evaluation to a selection vector — the retained PR 2
    /// execution tier (scalar `is_valid` tests, candidate lists), kept as
    /// the baseline the chunked tier is benchmarked against.
    pub fn evaluate_rowwise(&self, table: &Table) -> Result<(SelectionVector, ScanStats)> {
        self.check_table(table)?;
        let mut stats = ScanStats::default();
        let mut rows: Vec<usize> = Vec::new();
        self.run_fused_rowwise(
            table,
            ScanDomain::Full(table.row_count()),
            &mut rows,
            &mut stats,
        )?;
        Ok((SelectionVector::from_sorted_rows(rows), stats))
    }

    /// Row-at-a-time fused filter+count (the PR 2 tier; see
    /// [`CompiledPredicate::evaluate_rowwise`]).
    pub fn count_matches_rowwise(&self, table: &Table) -> Result<(usize, ScanStats)> {
        self.check_table(table)?;
        let mut stats = ScanStats::default();
        let mut sink = CountSink::default();
        self.run_fused_rowwise(
            table,
            ScanDomain::Full(table.row_count()),
            &mut sink,
            &mut stats,
        )?;
        Ok((sink.0, stats))
    }

    /// Row-at-a-time fused filter+aggregate (the PR 2 tier; see
    /// [`CompiledPredicate::evaluate_rowwise`]).
    pub fn filter_moments_rowwise(
        &self,
        table: &Table,
        column: &str,
    ) -> Result<(MomentSketch, ScanStats)> {
        self.check_table(table)?;
        let source = numeric_source(table, column)?;
        let mut stats = ScanStats::default();
        let mut sink = MomentSink::new(source);
        self.run_fused_rowwise(
            table,
            ScanDomain::Full(table.row_count()),
            &mut sink,
            &mut stats,
        )?;
        Ok((sink.sketch, stats))
    }

    /// Run the predicate over `base` with the conjunction prefix refined
    /// into candidate lists and the *last* conjunct streamed into `sink` —
    /// the row-at-a-time legacy tier.
    fn run_fused_rowwise<S: SelectionSink>(
        &self,
        table: &Table,
        base: ScanDomain,
        sink: &mut S,
        stats: &mut ScanStats,
    ) -> Result<()> {
        let (prefix, last): (&[Node], &Node) = match &self.root {
            Node::And(children) => match children.split_last() {
                Some((last, prefix)) => (prefix, last),
                None => (&[], &self.root),
            },
            other => (&[], other),
        };
        let mut candidates: Option<SelectionVector> = None;
        for child in prefix {
            let domain = match &candidates {
                None => base,
                Some(sel) => ScanDomain::Candidates(sel.rows()),
            };
            // mirror the oracle: an empty running selection short-circuits
            // the conjunction before the next conjunct is evaluated
            if domain.is_empty() {
                return Ok(());
            }
            candidates = Some(eval_node(child, table, domain, stats)?);
        }
        if candidates.as_ref().is_some_and(|sel| sel.is_empty()) {
            return Ok(());
        }
        let domain = match &candidates {
            None => base,
            Some(sel) => ScanDomain::Candidates(sel.rows()),
        };
        run_terminal(last, table, domain, sink, stats)
    }

    /// Run `work` over every shard of `parts`, shard 0 on the calling thread
    /// and one `std::thread::scope` worker per further shard. Results come
    /// back in ascending shard order; on error, the error of the *lowest*
    /// failing shard is returned, so failures are deterministic regardless
    /// of thread scheduling.
    fn for_each_shard<T, F>(&self, parts: &Partitioning, work: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(ScanDomain) -> Result<T> + Sync,
    {
        let shard_domain = |i: usize| {
            let r = parts.range(i);
            ScanDomain::Range {
                start: r.start,
                end: r.end,
            }
        };
        if parts.is_single() {
            return Ok(vec![work(shard_domain(0))?]);
        }
        let results: Vec<Result<T>> = std::thread::scope(|scope| {
            let work = &work;
            let handles: Vec<_> = (1..parts.shard_count())
                .map(|i| {
                    let domain = shard_domain(i);
                    scope.spawn(move || work(domain))
                })
                .collect();
            let mut out = Vec::with_capacity(parts.shard_count());
            out.push(work(shard_domain(0)));
            for handle in handles {
                // analyzer:allow(panic_path, reason = "a worker panic is a bug in the kernel itself; re-raising it preserves std::thread::scope abort semantics")
                out.push(handle.join().expect("shard worker panicked"));
            }
            out
        });
        results.into_iter().collect()
    }

    fn check_partitioning(&self, table: &Table, parts: &Partitioning) -> Result<()> {
        self.check_table(table)?;
        if parts.row_count() != table.row_count() {
            return Err(ColumnarError::LengthMismatch {
                expected: table.row_count(),
                found: parts.row_count(),
            });
        }
        Ok(())
    }

    /// Sharded [`CompiledPredicate::evaluate_with_stats`]: every shard of
    /// `parts` is filtered by its own worker thread and the per-shard
    /// candidate lists are concatenated in ascending shard order. Because
    /// shards are contiguous and ascending, the concatenation *is* the
    /// single-threaded selection — identical rows in identical order. For
    /// plain leaves and top-level conjunctions the per-shard [`ScanStats`]
    /// also sum to the single-threaded stats; nested combinators that fall
    /// back to full-column scans (`ErrOnValid`, AND under a candidate list)
    /// repeat that full scan per shard and report the extra work honestly.
    pub fn evaluate_partitioned(
        &self,
        table: &Table,
        parts: &Partitioning,
    ) -> Result<(SelectionVector, Vec<ScanStats>)> {
        self.check_partitioning(table, parts)?;
        let shards = self.for_each_shard(parts, |domain| {
            let mut stats = ScanStats::default();
            let mut rows: Vec<usize> = Vec::new();
            self.run_fused(table, domain, &mut rows, &mut stats)?;
            Ok((rows, stats))
        })?;
        let mut all_rows = Vec::with_capacity(shards.iter().map(|(r, _)| r.len()).sum());
        let mut stats = Vec::with_capacity(shards.len());
        for (rows, shard_stats) in shards {
            all_rows.extend(rows);
            stats.push(shard_stats);
        }
        Ok((SelectionVector::from_sorted_rows(all_rows), stats))
    }

    /// Sharded fused filter+count: per-shard [`CountSink`]s run in parallel
    /// and the candidate counts are summed (integer addition — exact, so
    /// the total is bit-identical to [`CompiledPredicate::count_matches`]).
    pub fn count_matches_partitioned(
        &self,
        table: &Table,
        parts: &Partitioning,
    ) -> Result<(usize, Vec<ScanStats>)> {
        self.check_partitioning(table, parts)?;
        let shards = self.for_each_shard(parts, |domain| {
            let mut stats = ScanStats::default();
            let mut sink = CountSink::default();
            self.run_fused(table, domain, &mut sink, &mut stats)?;
            Ok((sink.0, stats))
        })?;
        let mut total = 0usize;
        let mut stats = Vec::with_capacity(shards.len());
        for (count, shard_stats) in shards {
            total += count;
            stats.push(shard_stats);
        }
        Ok((total, stats))
    }

    /// Sharded fused filter+aggregate. The *filter* — the dominant cost —
    /// fans out: each worker produces its shard's matching row ids. The
    /// matched rows are then folded into one [`MomentSketch`] on the calling
    /// thread, in ascending shard order, i.e. in global row order: exactly
    /// the push sequence of the single-threaded
    /// [`CompiledPredicate::filter_moments`], so every accumulated moment
    /// (including the order-sensitive `sum` and Welford `mean`/`m2`) is
    /// **bit-identical** to the single-threaded path and therefore to the
    /// scalar `compute_aggregate` oracle. A merge of per-shard float
    /// accumulators could not guarantee that — float addition is not
    /// associative — which is why the aggregation tail stays sequential;
    /// it touches only the rows that survived the predicate.
    pub fn filter_moments_partitioned(
        &self,
        table: &Table,
        column: &str,
        parts: &Partitioning,
    ) -> Result<(MomentSketch, Vec<ScanStats>)> {
        self.check_partitioning(table, parts)?;
        let source = numeric_source(table, column)?;
        let mut sink = MomentSink::new(source);
        let stats = self.replay_shards_into(table, parts, &mut sink)?;
        Ok((sink.sketch, stats))
    }
}

/// One query's slot in a shared multi-query scan: a compiled predicate and
/// the sink its matching rows stream into. The sink is a trait object so a
/// single [`multi_scan`] can drive a mixed batch — counting sinks, moment
/// sinks and weighted sinks side by side.
pub struct MultiScanItem<'p, 's> {
    /// The query's predicate, compiled against the scanned table's schema.
    pub predicate: &'p CompiledPredicate,
    /// Where the query's matching rows go.
    pub sink: &'s mut dyn SelectionSink,
}

/// Rows per batch of the shared serial scan: every predicate of a
/// [`multi_scan`] visits one batch of rows before any predicate moves to the
/// next, so the batch's column data stays hot in cache across all N queries.
pub const MULTI_SCAN_BATCH_ROWS: usize = 8_192;

/// Evaluate N compiled predicates over one table in a single shared sweep,
/// streaming each predicate's matching rows into its own sink — the
/// multi-sink generalisation of [`CompiledPredicate::filter_moments`] /
/// [`CompiledPredicate::filter_weighted_moments`] that lets a serving layer
/// answer a whole batch of same-impression queries with one scan pass.
///
/// Each item is evaluated independently and reports its own
/// [`ScanStats`] (or its own error — one query's type mismatch never poisons
/// its batch mates; on error that item's sink contents are unspecified).
///
/// **Bit-identity.** Every sink receives exactly the row sequence the
/// corresponding serial fused entry point would have produced, in ascending
/// row order: the serial path walks contiguous row batches in order, and the
/// sharded path (`parts` with more than one shard) has workers materialise
/// per-shard match lists which are replayed into the sinks on the calling
/// thread in ascending shard order — the same fixed-order fold as
/// [`CompiledPredicate::filter_moments_partitioned`]. Accumulated moments
/// are therefore bit-identical to a per-query serial scan. Scan-work
/// accounting matches the serial path for flattened predicates; nested
/// conjunctions reached through candidate lists repeat their full-column
/// fallback per row batch and report that extra work honestly, mirroring the
/// documented behaviour of the partitioned paths.
pub fn multi_scan(
    table: &Table,
    items: &mut [MultiScanItem<'_, '_>],
    parts: Option<&Partitioning>,
) -> Vec<Result<ScanStats>> {
    let mut results: Vec<Result<ScanStats>> = items
        .iter()
        .map(|item| {
            item.predicate
                .check_table(table)
                .map(|()| ScanStats::default())
        })
        .collect();
    let shard_parts = match parts {
        Some(parts) => {
            if parts.row_count() != table.row_count() {
                for result in results.iter_mut().filter(|r| r.is_ok()) {
                    *result = Err(ColumnarError::LengthMismatch {
                        expected: table.row_count(),
                        found: parts.row_count(),
                    });
                }
                return results;
            }
            (!parts.is_single()).then_some(parts)
        }
        None => None,
    };
    match shard_parts {
        Some(parts) => multi_scan_sharded(table, items, parts, &mut results),
        None => multi_scan_serial(table, items, &mut results),
    }
    results
}

/// The shared serial sweep: batches of contiguous rows, all live predicates
/// evaluated per batch, matches streamed straight into the sinks.
fn multi_scan_serial(
    table: &Table,
    items: &mut [MultiScanItem<'_, '_>],
    results: &mut [Result<ScanStats>],
) {
    let rows = table.row_count();
    let mut start = 0;
    while start < rows {
        let end = rows.min(start + MULTI_SCAN_BATCH_ROWS);
        let domain = ScanDomain::Range { start, end };
        for (item, result) in items.iter_mut().zip(results.iter_mut()) {
            let Ok(stats) = result else { continue };
            if let Err(err) = item
                .predicate
                .run_fused(table, domain, &mut item.sink, stats)
            {
                *result = Err(err);
            }
        }
        start = end;
    }
}

/// The sharded sweep: every worker evaluates all live predicates over its
/// shard and materialises per-item match lists; the calling thread replays
/// them into the sinks in ascending shard order (= global row order). Per
/// item, the error of the lowest failing shard wins, so failures are
/// deterministic regardless of thread scheduling.
fn multi_scan_sharded(
    table: &Table,
    items: &mut [MultiScanItem<'_, '_>],
    parts: &Partitioning,
    results: &mut [Result<ScanStats>],
) {
    let live: Vec<bool> = results.iter().map(Result::is_ok).collect();
    let predicates: Vec<&CompiledPredicate> = items.iter().map(|item| item.predicate).collect();
    let scan_shard = |domain: ScanDomain| -> Vec<Result<(Vec<usize>, ScanStats)>> {
        predicates
            .iter()
            .zip(&live)
            .map(|(predicate, live)| {
                if !live {
                    return Ok((Vec::new(), ScanStats::default()));
                }
                let mut stats = ScanStats::default();
                let mut rows: Vec<usize> = Vec::new();
                predicate
                    .run_fused(table, domain, &mut rows, &mut stats)
                    .map(|()| (rows, stats))
            })
            .collect()
    };
    let shard_domain = |i: usize| {
        let r = parts.range(i);
        ScanDomain::Range {
            start: r.start,
            end: r.end,
        }
    };
    type ShardResults = Vec<Result<(Vec<usize>, ScanStats)>>;
    let per_shard: Vec<ShardResults> = std::thread::scope(|scope| {
        let scan_shard = &scan_shard;
        let handles: Vec<_> = (1..parts.shard_count())
            .map(|i| {
                let domain = shard_domain(i);
                scope.spawn(move || scan_shard(domain))
            })
            .collect();
        let mut out = Vec::with_capacity(parts.shard_count());
        out.push(scan_shard(shard_domain(0)));
        for handle in handles {
            // analyzer:allow(panic_path, reason = "a worker panic is a bug in the kernel itself; re-raising it preserves std::thread::scope abort semantics")
            out.push(handle.join().expect("shard worker panicked"));
        }
        out
    });
    for shard in per_shard {
        for ((item, result), item_shard) in items.iter_mut().zip(results.iter_mut()).zip(shard) {
            let Ok(total) = result else { continue };
            match item_shard {
                Ok((rows, stats)) => {
                    total.merge(&stats);
                    for row in rows {
                        item.sink.accept(row);
                    }
                }
                Err(err) => *result = Err(err),
            }
        }
    }
}

/// The weighted kernels need one single-draw selection probability per table
/// row; anything else is a caller bug surfaced as a length mismatch.
fn check_probabilities(table: &Table, probabilities: &[f64]) -> Result<()> {
    if probabilities.len() != table.row_count() {
        return Err(ColumnarError::LengthMismatch {
            expected: table.row_count(),
            found: probabilities.len(),
        });
    }
    Ok(())
}

/// Typed access to a numeric aggregation column, shared by the fused and
/// the partitioned filter+aggregate paths and by callers that assemble
/// their own [`MomentSink`]/[`WeightedMomentSink`] slots for a
/// [`multi_scan`].
pub fn numeric_source<'a>(table: &'a Table, column: &str) -> Result<AggSource<'a>> {
    let col = table.column(column)?;
    match col {
        Column::Int64 { .. } => Ok(AggSource::I64(i64_cells(col), col.validity_ref())),
        Column::Float64 { .. } => Ok(AggSource::F64(f64_cells(col), col.validity_ref())),
        _ => Err(ColumnarError::NotNumeric(column.to_owned())),
    }
}

fn literal_name(value: &Value) -> &'static str {
    value.type_name()
}

/// Compile a `Compare` leaf.
fn compile_compare(col: usize, col_type: DataType, op: CompareOp, value: &Value) -> Node {
    match (col_type, value) {
        // NULL literals never match anything (SQL semantics)
        (_, Value::Null) => Node::Nothing,
        (DataType::Int64, Value::Int64(v)) => Node::CmpI64 { col, op, bound: *v },
        (DataType::Int64, Value::Float64(v)) if v.is_nan() => Node::ErrOnValid {
            col,
            found: literal_name(value),
        },
        (DataType::Int64, Value::Float64(v)) => Node::CmpI64F { col, op, bound: *v },
        (DataType::Float64, Value::Int64(v)) => Node::CmpF64 {
            col,
            op,
            bound: *v as f64,
        },
        (DataType::Float64, Value::Float64(v)) if v.is_nan() => Node::ErrOnValid {
            col,
            found: literal_name(value),
        },
        (DataType::Float64, Value::Float64(v)) => Node::CmpF64 { col, op, bound: *v },
        (DataType::Bool, Value::Bool(v)) => Node::CmpBool { col, op, bound: *v },
        (DataType::Utf8, Value::Utf8(v)) => Node::CmpStr {
            col,
            op,
            bound: v.clone(),
        },
        _ => Node::ErrOnValid {
            col,
            found: literal_name(value),
        },
    }
}

/// Numeric bound compiled from a literal, or `None` when the literal cannot
/// be compared against the column.
fn numeric_bound(col_type: DataType, value: &Value) -> Option<NumBound> {
    match (col_type, value) {
        (DataType::Int64, Value::Int64(v)) => Some(NumBound::I64(*v)),
        (DataType::Int64, Value::Float64(v)) | (DataType::Float64, Value::Float64(v)) => {
            Some(NumBound::F64(*v))
        }
        (DataType::Float64, Value::Int64(v)) => Some(NumBound::F64(*v as f64)),
        _ => None,
    }
}

/// Compile a `Between` leaf into a one-pass range node, preserving the
/// oracle's semantics for NULL and mismatching bounds.
fn compile_between(col: usize, col_type: DataType, low: &Value, high: &Value) -> Node {
    // A bound of a type the column cannot be compared against poisons the
    // whole range (lazily, like the oracle). NULL bounds make the range
    // empty but do not suppress the *other* bound's type error.
    let bound_err = |value: &Value| -> Option<Node> {
        if value.is_null() {
            return None;
        }
        let compatible = match col_type {
            DataType::Int64 | DataType::Float64 => numeric_bound(col_type, value).is_some(),
            DataType::Bool => matches!(value, Value::Bool(_)),
            DataType::Utf8 => matches!(value, Value::Utf8(_)),
        };
        let nan = matches!(value, Value::Float64(v) if v.is_nan());
        if !compatible || nan {
            Some(Node::ErrOnValid {
                col,
                found: literal_name(value),
            })
        } else {
            None
        }
    };
    if let Some(err) = bound_err(low) {
        return err;
    }
    if let Some(err) = bound_err(high) {
        return err;
    }
    if low.is_null() || high.is_null() {
        return Node::Nothing;
    }
    match col_type {
        DataType::Int64 => Node::RangeI64 {
            col,
            low: vetted(numeric_bound(col_type, low)),
            high: vetted(numeric_bound(col_type, high)),
        },
        DataType::Float64 => Node::RangeF64 {
            col,
            low: vetted(low.as_f64()),
            high: vetted(high.as_f64()),
        },
        DataType::Bool => Node::RangeBool {
            col,
            low: vetted(low.as_bool()),
            high: vetted(high.as_bool()),
        },
        DataType::Utf8 => Node::RangeStr {
            col,
            low: vetted(low.as_str()).to_owned(),
            high: vetted(high.as_str()).to_owned(),
        },
    }
}

/// Unwrap a bound conversion that `bound_err` has already vetted for type
/// compatibility; `None` here would mean the compatibility check and the
/// conversion disagree about what converts.
fn vetted<T>(bound: Option<T>) -> T {
    // analyzer:allow(panic_path, reason = "bound compatibility was checked by bound_err immediately before every call; a miss is a compile_between bug, not a data error")
    bound.expect("checked compatible")
}

fn compile_node(predicate: &Predicate, schema: &SchemaRef) -> Result<Node> {
    Ok(match predicate {
        Predicate::True => Node::All,
        Predicate::False => Node::Nothing,
        Predicate::Compare { column, op, value } => {
            let (col, col_type) = leaf_column(schema, column)?;
            compile_compare(col, col_type, *op, value)
        }
        Predicate::Between { column, low, high } => {
            let (col, col_type) = leaf_column(schema, column)?;
            compile_between(col, col_type, low, high)
        }
        Predicate::IsNull(column) => Node::IsNull {
            col: schema.index_of(column)?,
        },
        Predicate::IsNotNull(column) => Node::IsNotNull {
            col: schema.index_of(column)?,
        },
        Predicate::And(ps) => Node::And(
            ps.iter()
                .map(|p| compile_node(p, schema))
                .collect::<Result<Vec<_>>>()?,
        ),
        Predicate::Or(ps) => Node::Or(
            ps.iter()
                .map(|p| compile_node(p, schema))
                .collect::<Result<Vec<_>>>()?,
        ),
        Predicate::Not(p) => Node::Not(Box::new(compile_node(p, schema)?)),
    })
}

/// Resolve a leaf's column name to its index and type.
fn leaf_column(schema: &SchemaRef, column: &str) -> Result<(usize, DataType)> {
    let col = schema.index_of(column)?;
    // analyzer:allow(panic_path_index, reason = "index_of returned this index one line up")
    Ok((col, schema.fields()[col].data_type))
}

fn mismatch_error(table: &Table, col: usize, found: &'static str) -> ColumnarError {
    // analyzer:allow(panic_path_index, reason = "leaf col indices come from index_of at compile time against this same schema")
    let field = &table.schema().fields()[col];
    ColumnarError::TypeMismatch {
        column: field.name.clone(),
        expected: field.data_type.name(),
        found,
    }
}

fn column_at(table: &Table, col: usize) -> &Column {
    table
        .column_at(col)
        // analyzer:allow(panic_path, reason = "leaf col indices come from index_of at compile time; a miss means the table/schema pair changed under the predicate, a caller contract violation")
        .expect("compiled column index within schema")
}

// The compile step verified every leaf's column type against the schema, so
// a slice-type miss below means the Table violates its own schema — a
// programming error surfaced loudly, not a recoverable data error.

fn i64_cells(c: &Column) -> &[i64] {
    // analyzer:allow(panic_path, reason = "leaf type was verified against the schema at compile time; a miss is a schema-integrity bug")
    c.i64_slice().expect("Int64 column")
}

fn f64_cells(c: &Column) -> &[f64] {
    // analyzer:allow(panic_path, reason = "leaf type was verified against the schema at compile time; a miss is a schema-integrity bug")
    c.f64_slice().expect("Float64 column")
}

fn bool_cells(c: &Column) -> &[bool] {
    // analyzer:allow(panic_path, reason = "leaf type was verified against the schema at compile time; a miss is a schema-integrity bug")
    c.bool_slice().expect("Bool column")
}

fn utf8_cells(c: &Column) -> &[String] {
    // analyzer:allow(panic_path, reason = "leaf type was verified against the schema at compile time; a miss is a schema-integrity bug")
    c.utf8_slice().expect("Utf8 column")
}

/// Materialise the domain itself as a selection (the `TRUE` node).
fn domain_selection(domain: ScanDomain) -> SelectionVector {
    match domain {
        ScanDomain::Full(len) => SelectionVector::all(len),
        ScanDomain::Range { start, end } => {
            SelectionVector::from_sorted_rows((start..end).collect())
        }
        ScanDomain::Candidates(rows) => SelectionVector::from_sorted_rows(rows.to_vec()),
    }
}

/// Set difference `domain \ sel` (both sorted): the NOT combinator within a
/// domain.
fn domain_minus(domain: ScanDomain, sel: &SelectionVector) -> SelectionVector {
    fn minus(
        rows: impl Iterator<Item = usize>,
        capacity: usize,
        sel: &SelectionVector,
    ) -> Vec<usize> {
        let mut out = Vec::with_capacity(capacity);
        let mut excluded = sel.rows().iter().peekable();
        for row in rows {
            while let Some(&&e) = excluded.peek() {
                if e < row {
                    excluded.next();
                } else {
                    break;
                }
            }
            if excluded.peek() != Some(&&row) {
                out.push(row);
            }
        }
        out
    }
    match domain {
        ScanDomain::Full(len) => sel.complement(len),
        ScanDomain::Range { start, end } => SelectionVector::from_sorted_rows(minus(
            start..end,
            (end - start).saturating_sub(sel.len()),
            sel,
        )),
        ScanDomain::Candidates(rows) => SelectionVector::from_sorted_rows(minus(
            rows.iter().copied(),
            rows.len().saturating_sub(sel.len()),
            sel,
        )),
    }
}

/// Evaluate a node by refining `mask` in place — the chunked execution
/// tier. On entry the mask holds the candidate rows (the coverage of the
/// base range for a root call); on exit it holds the rows that also satisfy
/// `node`.
///
/// Error-semantics parity with the scalar oracle: the oracle evaluates
/// every child of a combinator over the *full table* and only
/// short-circuits a conjunction when the running intersection is globally
/// empty. Leaf children may refine the running mask directly (a leaf's
/// in-contract errors are either candidate-independent — `ErrOnValid`
/// checks the whole column — or out-of-contract NaN data), but a
/// *composite* child must be evaluated into a fresh coverage mask of the
/// whole base range and intersected afterwards: refining a nested AND in
/// place would let the outer candidates starve an inner conjunct whose
/// emptiness — not the intersection's — is what gates the oracle's
/// evaluation of the conjunct after it.
fn refine_node(
    node: &Node,
    table: &Table,
    mask: &mut MatchMask,
    stats: &mut ScanStats,
) -> Result<()> {
    match node {
        Node::And(children) => {
            for child in children {
                // the oracle breaks out of a conjunction as soon as the
                // running intersection is empty, skipping any error a later
                // conjunct would raise
                if mask.is_empty() {
                    break;
                }
                match child {
                    Node::And(_) | Node::Or(_) | Node::Not(_) => {
                        let mut cover = MatchMask::coverage(mask.start(), mask.end());
                        refine_node(child, table, &mut cover, stats)?;
                        mask.and_with(&cover);
                    }
                    leaf => refine_leaf(leaf, table, mask, stats)?,
                }
            }
            Ok(())
        }
        Node::Or(children) => {
            let mut acc = MatchMask::coverage(mask.start(), mask.end());
            acc.clear();
            for child in children {
                let mut cover = MatchMask::coverage(mask.start(), mask.end());
                refine_node(child, table, &mut cover, stats)?;
                acc.or_with(&cover);
            }
            mask.and_with(&acc);
            Ok(())
        }
        Node::Not(child) => {
            let mut cover = MatchMask::coverage(mask.start(), mask.end());
            refine_node(child, table, &mut cover, stats)?;
            mask.and_not(&cover);
            Ok(())
        }
        leaf => refine_leaf(leaf, table, mask, stats),
    }
}

/// Dispatch a leaf node to its chunked mask kernel.
fn refine_leaf(
    node: &Node,
    table: &Table,
    mask: &mut MatchMask,
    stats: &mut ScanStats,
) -> Result<()> {
    match node {
        Node::All => {
            stats.visit(mask_all(mask).visited);
            Ok(())
        }
        Node::Nothing => {
            mask.clear();
            Ok(())
        }
        Node::CmpI64 { col, op, bound } => {
            let c = column_at(table, *col);
            let scan = mask_cmp_i64(i64_cells(c), c.validity_ref(), *op, *bound, mask);
            stats.visit(scan.visited);
            Ok(())
        }
        Node::CmpI64F { col, op, bound } => {
            let c = column_at(table, *col);
            mask_cmp_i64_f64(i64_cells(c), c.validity_ref(), *op, *bound, mask)
                .map(|scan| stats.visit(scan.visited))
                .map_err(|_| mismatch_error(table, *col, "Float64"))
        }
        Node::CmpF64 { col, op, bound } => {
            let c = column_at(table, *col);
            mask_cmp_f64(f64_cells(c), c.validity_ref(), *op, *bound, mask)
                .map(|scan| stats.visit(scan.visited))
                .map_err(|_| mismatch_error(table, *col, "Float64"))
        }
        Node::CmpBool { col, op, bound } => {
            let c = column_at(table, *col);
            let scan = mask_cmp_bool(bool_cells(c), c.validity_ref(), *op, *bound, mask);
            stats.visit(scan.visited);
            Ok(())
        }
        Node::CmpStr { col, op, bound } => {
            let c = column_at(table, *col);
            let scan = match c.dict_parts() {
                Some((codes, dict)) => mask_dict(
                    codes,
                    c.validity_ref(),
                    DictPred::compare(dict, *op, bound),
                    mask,
                ),
                None => mask_cmp_str(utf8_cells(c), c.validity_ref(), *op, bound, mask),
            };
            stats.visit(scan.visited);
            Ok(())
        }
        Node::RangeI64 { col, low, high } => {
            let c = column_at(table, *col);
            mask_range_i64(i64_cells(c), c.validity_ref(), *low, *high, mask)
                .map(|scan| stats.visit(scan.visited))
                .map_err(|_| mismatch_error(table, *col, "Float64"))
        }
        Node::RangeF64 { col, low, high } => {
            let c = column_at(table, *col);
            mask_range_f64(f64_cells(c), c.validity_ref(), *low, *high, mask)
                .map(|scan| stats.visit(scan.visited))
                .map_err(|_| mismatch_error(table, *col, "Float64"))
        }
        Node::RangeStr { col, low, high } => {
            let c = column_at(table, *col);
            let scan = match c.dict_parts() {
                Some((codes, dict)) => mask_dict(
                    codes,
                    c.validity_ref(),
                    DictPred::range(dict, low, high),
                    mask,
                ),
                None => mask_range_str(utf8_cells(c), c.validity_ref(), low, high, mask),
            };
            stats.visit(scan.visited);
            Ok(())
        }
        Node::RangeBool { col, low, high } => {
            let c = column_at(table, *col);
            let scan = mask_range_bool(bool_cells(c), c.validity_ref(), *low, *high, mask);
            stats.visit(scan.visited);
            Ok(())
        }
        Node::IsNull { col } => {
            let c = column_at(table, *col);
            stats.visit(mask_is_null(c.validity_ref(), mask).visited);
            Ok(())
        }
        Node::IsNotNull { col } => {
            let c = column_at(table, *col);
            stats.visit(mask_is_not_null(c.validity_ref(), mask).visited);
            Ok(())
        }
        Node::ErrOnValid { col, found } => {
            // the oracle scans the full column and errors on the first
            // non-NULL row, regardless of the candidate mask
            let c = column_at(table, *col);
            stats.visit(c.len());
            if any_valid(c.validity_ref(), ScanDomain::Full(c.len())) {
                Err(mismatch_error(table, *col, found))
            } else {
                mask.clear();
                Ok(())
            }
        }
        Node::And(_) | Node::Or(_) | Node::Not(_) => {
            // analyzer:allow(panic_path, reason = "refine_node dispatches composites before reaching this leaf-only kernel table; hitting this arm is a dispatch bug")
            unreachable!("composite nodes are handled by refine_node")
        }
    }
}

/// Evaluate a node into a materialised selection over the given domain.
fn eval_node(
    node: &Node,
    table: &Table,
    domain: ScanDomain,
    stats: &mut ScanStats,
) -> Result<SelectionVector> {
    match node {
        Node::And(children) => {
            // The oracle evaluates every conjunct against the full table and
            // breaks out as soon as the running intersection is empty —
            // skipping errors the remaining conjuncts would raise. Candidate
            // refinement is only equivalent when the running selection
            // coincides with the oracle's (a Full domain); a *nested* AND
            // reached through a candidate list must therefore evaluate over
            // the full table and intersect, or its short-circuit would
            // trigger on candidate emptiness instead of full-table
            // emptiness.
            if let ScanDomain::Candidates(_) = domain {
                let full = eval_node(node, table, ScanDomain::Full(table.row_count()), stats)?;
                return Ok(domain_selection(domain).intersect(&full));
            }
            let mut current: Option<SelectionVector> = None;
            for child in children {
                let dom = match &current {
                    None => domain,
                    Some(sel) => ScanDomain::Candidates(sel.rows()),
                };
                if dom.is_empty() {
                    break;
                }
                current = Some(eval_node(child, table, dom, stats)?);
            }
            Ok(current.unwrap_or_else(|| domain_selection(domain)))
        }
        Node::Or(children) => {
            let mut acc = SelectionVector::empty();
            for child in children {
                acc = acc.union(&eval_node(child, table, domain, stats)?);
            }
            Ok(acc)
        }
        Node::Not(child) => {
            let sel = eval_node(child, table, domain, stats)?;
            Ok(domain_minus(domain, &sel))
        }
        leaf => {
            let mut rows: Vec<usize> = Vec::new();
            run_leaf(leaf, table, domain, &mut rows, stats)?;
            Ok(SelectionVector::from_sorted_rows(rows))
        }
    }
}

/// Run the terminal stage of a fused scan: a leaf streams matches straight
/// into the sink; a composite node falls back to materialising its
/// selection and replaying it into the sink.
fn run_terminal<S: SelectionSink>(
    node: &Node,
    table: &Table,
    domain: ScanDomain,
    sink: &mut S,
    stats: &mut ScanStats,
) -> Result<()> {
    match node {
        Node::And(_) | Node::Or(_) | Node::Not(_) => {
            let sel = eval_node(node, table, domain, stats)?;
            for row in sel.iter() {
                sink.accept(row);
            }
            Ok(())
        }
        leaf => run_leaf(leaf, table, domain, sink, stats),
    }
}

/// Dispatch a leaf node to its typed kernel.
fn run_leaf<S: SelectionSink>(
    node: &Node,
    table: &Table,
    domain: ScanDomain,
    sink: &mut S,
    stats: &mut ScanStats,
) -> Result<()> {
    match node {
        Node::All => {
            stats.visit(domain.len());
            scan_all(domain, sink);
            Ok(())
        }
        Node::Nothing => Ok(()),
        Node::CmpI64 { col, op, bound } => {
            stats.visit(domain.len());
            let c = column_at(table, *col);
            scan_cmp_i64(i64_cells(c), c.validity_ref(), domain, *op, *bound, sink);
            Ok(())
        }
        Node::CmpI64F { col, op, bound } => {
            stats.visit(domain.len());
            let c = column_at(table, *col);
            scan_cmp_i64_f64(i64_cells(c), c.validity_ref(), domain, *op, *bound, sink)
                .map_err(|_| mismatch_error(table, *col, "Float64"))
        }
        Node::CmpF64 { col, op, bound } => {
            stats.visit(domain.len());
            let c = column_at(table, *col);
            scan_cmp_f64(f64_cells(c), c.validity_ref(), domain, *op, *bound, sink)
                .map_err(|_| mismatch_error(table, *col, "Float64"))
        }
        Node::CmpBool { col, op, bound } => {
            stats.visit(domain.len());
            let c = column_at(table, *col);
            scan_cmp_bool(bool_cells(c), c.validity_ref(), domain, *op, *bound, sink);
            Ok(())
        }
        Node::CmpStr { col, op, bound } => {
            stats.visit(domain.len());
            let c = column_at(table, *col);
            match c.dict_parts() {
                Some((codes, dict)) => scan_dict(
                    codes,
                    c.validity_ref(),
                    domain,
                    DictPred::compare(dict, *op, bound),
                    sink,
                ),
                None => scan_cmp_str(utf8_cells(c), c.validity_ref(), domain, *op, bound, sink),
            }
            Ok(())
        }
        Node::RangeI64 { col, low, high } => {
            stats.visit(domain.len());
            let c = column_at(table, *col);
            scan_range_i64(i64_cells(c), c.validity_ref(), domain, *low, *high, sink)
                .map_err(|_| mismatch_error(table, *col, "Float64"))
        }
        Node::RangeF64 { col, low, high } => {
            stats.visit(domain.len());
            let c = column_at(table, *col);
            scan_range_f64(f64_cells(c), c.validity_ref(), domain, *low, *high, sink)
                .map_err(|_| mismatch_error(table, *col, "Float64"))
        }
        Node::RangeStr { col, low, high } => {
            stats.visit(domain.len());
            let c = column_at(table, *col);
            match c.dict_parts() {
                Some((codes, dict)) => scan_dict(
                    codes,
                    c.validity_ref(),
                    domain,
                    DictPred::range(dict, low, high),
                    sink,
                ),
                None => scan_range_str(utf8_cells(c), c.validity_ref(), domain, low, high, sink),
            }
            Ok(())
        }
        Node::RangeBool { col, low, high } => {
            stats.visit(domain.len());
            let c = column_at(table, *col);
            scan_range_bool(bool_cells(c), c.validity_ref(), domain, *low, *high, sink);
            Ok(())
        }
        Node::IsNull { col } => {
            stats.visit(domain.len());
            let c = column_at(table, *col);
            scan_is_null(c.validity_ref(), domain, sink);
            Ok(())
        }
        Node::IsNotNull { col } => {
            stats.visit(domain.len());
            let c = column_at(table, *col);
            scan_is_not_null(c.validity_ref(), domain, sink);
            Ok(())
        }
        Node::ErrOnValid { col, found } => {
            // the oracle scans the full column and errors on the first
            // non-NULL row, regardless of the candidate list
            let c = column_at(table, *col);
            stats.visit(c.len());
            if any_valid(c.validity_ref(), ScanDomain::Full(c.len())) {
                Err(mismatch_error(table, *col, found))
            } else {
                Ok(())
            }
        }
        Node::And(_) | Node::Or(_) | Node::Not(_) => {
            // analyzer:allow(panic_path, reason = "eval_node/run_terminal dispatch composites before reaching this leaf-only kernel table; hitting this arm is a dispatch bug")
            unreachable!("composite nodes are handled by eval_node/run_terminal")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{compute_aggregate, AggregateKind};
    use crate::schema::{Field, Schema};

    fn test_table() -> Table {
        let schema = Schema::shared(vec![
            Field::new("objid", DataType::Int64),
            Field::new("ra", DataType::Float64),
            Field::nullable("r_mag", DataType::Float64),
            Field::new("class", DataType::Utf8),
        ])
        .unwrap();
        let mut t = Table::new("photoobj", schema);
        let rows: Vec<Vec<Value>> = vec![
            vec![1.into(), 180.0.into(), 17.2.into(), "GALAXY".into()],
            vec![2.into(), 185.5.into(), Value::Null, "STAR".into()],
            vec![3.into(), 190.0.into(), 19.0.into(), "GALAXY".into()],
            vec![4.into(), 200.0.into(), 21.5.into(), "QSO".into()],
            vec![5.into(), 170.0.into(), 16.0.into(), "STAR".into()],
        ];
        for r in rows {
            t.append_row(&r).unwrap();
        }
        t
    }

    fn compiled(p: &Predicate, t: &Table) -> CompiledPredicate {
        CompiledPredicate::compile(p, t.schema()).unwrap()
    }

    #[test]
    fn matches_oracle_on_basic_shapes() {
        let t = test_table();
        let predicates = vec![
            Predicate::True,
            Predicate::False,
            Predicate::between("ra", 175.0, 191.0),
            Predicate::eq("class", "GALAXY"),
            Predicate::gt("ra", 185),
            Predicate::lt("r_mag", 100.0),
            Predicate::IsNull("r_mag".into()),
            Predicate::IsNotNull("r_mag".into()),
            Predicate::eq("class", "GALAXY").and(Predicate::lt("ra", 185.0)),
            Predicate::eq("class", "QSO").or(Predicate::eq("class", "STAR")),
            Predicate::eq("class", "GALAXY").negate(),
            Predicate::between("objid", 2, 4).and(Predicate::gt("r_mag", 18.0)),
            Predicate::eq("r_mag", Value::Null),
        ];
        for p in predicates {
            let oracle = p.evaluate(&t).unwrap();
            let fast = compiled(&p, &t).evaluate(&t).unwrap();
            assert_eq!(oracle, fast, "predicate {p}");
        }
    }

    #[test]
    fn unknown_column_fails_at_compile_time() {
        let t = test_table();
        assert!(matches!(
            CompiledPredicate::compile(&Predicate::eq("missing", 1), t.schema()),
            Err(ColumnarError::ColumnNotFound(_))
        ));
    }

    #[test]
    fn type_mismatch_is_lazy_like_the_oracle() {
        let t = test_table();
        let p = Predicate::eq("class", 5);
        let c = compiled(&p, &t);
        assert!(matches!(
            c.evaluate(&t),
            Err(ColumnarError::TypeMismatch { .. })
        ));
        // but an all-NULL column never raises the mismatch
        let schema = Schema::shared(vec![Field::nullable("x", DataType::Utf8)]).unwrap();
        let mut empty = Table::new("t", schema);
        empty.append_row(&[Value::Null]).unwrap();
        let p = Predicate::eq("x", 5);
        assert!(p.evaluate(&empty).unwrap().is_empty());
        let c = CompiledPredicate::compile(&p, empty.schema()).unwrap();
        assert!(c.evaluate(&empty).unwrap().is_empty());
    }

    #[test]
    fn and_short_circuits_before_mismatch_like_the_oracle() {
        let t = test_table();
        let p = Predicate::eq("class", "NO_SUCH").and(Predicate::eq("ra", "not a number"));
        assert!(p.evaluate(&t).unwrap().is_empty());
        assert!(compiled(&p, &t).evaluate(&t).unwrap().is_empty());
        // without the short circuit the mismatch fires on both paths
        let p = Predicate::eq("class", "GALAXY").and(Predicate::eq("ra", "not a number"));
        assert!(p.evaluate(&t).is_err());
        assert!(compiled(&p, &t).evaluate(&t).is_err());
    }

    #[test]
    fn nan_literal_errors_with_valid_rows() {
        let t = test_table();
        let p = Predicate::gt("ra", f64::NAN);
        assert!(p.evaluate(&t).is_err());
        assert!(compiled(&p, &t).evaluate(&t).is_err());
    }

    #[test]
    fn between_null_bound_is_empty_but_checks_other_bound() {
        let t = test_table();
        let p = Predicate::between("ra", Value::Null, 190.0);
        assert!(p.evaluate(&t).unwrap().is_empty());
        assert!(compiled(&p, &t).evaluate(&t).unwrap().is_empty());
        let p = Predicate::between("ra", Value::Null, "oops");
        assert!(p.evaluate(&t).is_err());
        assert!(compiled(&p, &t).evaluate(&t).is_err());
    }

    #[test]
    fn fused_count_matches_selection_len() {
        let t = test_table();
        for p in [
            Predicate::between("ra", 175.0, 191.0),
            Predicate::eq("class", "GALAXY").and(Predicate::lt("ra", 185.0)),
            Predicate::True,
            Predicate::False,
            Predicate::eq("class", "QSO").or(Predicate::eq("class", "STAR")),
        ] {
            let c = compiled(&p, &t);
            let (count, _) = c.count_matches(&t).unwrap();
            assert_eq!(count, c.evaluate(&t).unwrap().len(), "predicate {p}");
        }
    }

    #[test]
    fn fused_moments_match_compute_aggregate() {
        let t = test_table();
        let p = Predicate::between("ra", 175.0, 200.0);
        let c = compiled(&p, &t);
        let sel = p.evaluate(&t).unwrap();
        let (sketch, _) = c.filter_moments(&t, "r_mag").unwrap();
        for kind in [
            AggregateKind::Count,
            AggregateKind::Sum,
            AggregateKind::Avg,
            AggregateKind::Min,
            AggregateKind::Max,
            AggregateKind::Variance,
        ] {
            let column = if kind == AggregateKind::Count {
                None
            } else {
                Some("r_mag")
            };
            let exact = compute_aggregate(&t, column, kind, &sel).unwrap();
            assert_eq!(exact.value, sketch.aggregate(kind), "kind {kind}");
        }
    }

    #[test]
    fn fused_moments_reject_string_columns() {
        let t = test_table();
        let c = compiled(&Predicate::True, &t);
        assert!(matches!(
            c.filter_moments(&t, "class"),
            Err(ColumnarError::NotNumeric(_))
        ));
    }

    #[test]
    fn conjunction_refinement_visits_fewer_rows() {
        let t = test_table();
        let p = Predicate::between("ra", 175.0, 191.0).and(Predicate::eq("class", "GALAXY"));
        let c = compiled(&p, &t);
        let (sel, stats) = c.evaluate_with_stats(&t).unwrap();
        assert_eq!(sel.rows(), &[0, 2]);
        // first pass visits all 5 rows, second only the 3 candidates
        assert_eq!(stats.rows_visited, 8);
    }

    #[test]
    fn schema_mismatch_rejected_at_evaluation() {
        let t = test_table();
        let other_schema = Schema::shared(vec![Field::new("x", DataType::Int64)]).unwrap();
        let other = Table::new("other", other_schema);
        let c = compiled(&Predicate::True, &t);
        assert!(c.evaluate(&other).is_err());
        assert!(c.matches_schema(t.schema()));
        assert!(!c.matches_schema(other.schema()));
    }

    #[test]
    fn partitioned_paths_match_single_threaded_bitwise() {
        let t = test_table();
        let predicates = vec![
            Predicate::True,
            Predicate::False,
            Predicate::between("ra", 175.0, 191.0),
            Predicate::eq("class", "GALAXY").and(Predicate::lt("ra", 195.0)),
            Predicate::eq("class", "QSO").or(Predicate::eq("class", "STAR")),
            Predicate::eq("class", "GALAXY").negate(),
            Predicate::IsNull("r_mag".into()),
        ];
        for p in predicates {
            let c = compiled(&p, &t);
            let single = c.evaluate(&t).unwrap();
            let (single_count, single_count_stats) = c.count_matches(&t).unwrap();
            let (single_sketch, single_moment_stats) = c.filter_moments(&t, "r_mag").unwrap();
            for shards in [1usize, 2, 3, 5, 9] {
                let parts = Partitioning::even(t.row_count(), shards);
                let (sel, stats) = c.evaluate_partitioned(&t, &parts).unwrap();
                assert_eq!(sel, single, "selection for {p} at {shards} shards");
                assert_eq!(stats.len(), parts.shard_count());
                let (count, count_stats) = c.count_matches_partitioned(&t, &parts).unwrap();
                assert_eq!(count, single_count, "count for {p} at {shards} shards");
                assert_eq!(
                    count_stats.iter().map(|s| s.rows_visited).sum::<u64>(),
                    single_count_stats.rows_visited,
                    "count stats for {p} at {shards} shards"
                );
                let (sketch, moment_stats) =
                    c.filter_moments_partitioned(&t, "r_mag", &parts).unwrap();
                // bit-identity, not just numeric equality
                assert_eq!(sketch.matched, single_sketch.matched);
                assert_eq!(sketch.count, single_sketch.count);
                assert_eq!(sketch.sum.to_bits(), single_sketch.sum.to_bits());
                assert_eq!(sketch.sum_sq.to_bits(), single_sketch.sum_sq.to_bits());
                assert_eq!(sketch.mean.to_bits(), single_sketch.mean.to_bits());
                assert_eq!(sketch.m2.to_bits(), single_sketch.m2.to_bits());
                assert_eq!(sketch.min.to_bits(), single_sketch.min.to_bits());
                assert_eq!(sketch.max.to_bits(), single_sketch.max.to_bits());
                assert_eq!(
                    moment_stats.iter().map(|s| s.rows_visited).sum::<u64>(),
                    single_moment_stats.rows_visited,
                    "moment stats for {p} at {shards} shards"
                );
            }
        }
    }

    #[test]
    fn partitioned_errors_are_deterministic() {
        let t = test_table();
        // NaN constant errors on every shard with a valid row; the lowest
        // shard's error wins, matching the single-threaded error
        let p = Predicate::gt("ra", f64::NAN);
        let c = compiled(&p, &t);
        let parts = Partitioning::even(t.row_count(), 3);
        assert!(matches!(
            c.evaluate_partitioned(&t, &parts),
            Err(ColumnarError::TypeMismatch { .. })
        ));
        assert!(c.count_matches_partitioned(&t, &parts).is_err());
        assert!(c.filter_moments_partitioned(&t, "r_mag", &parts).is_err());
    }

    #[test]
    fn partitioning_must_cover_the_table() {
        let t = test_table();
        let c = compiled(&Predicate::True, &t);
        let bad = Partitioning::even(t.row_count() + 1, 2);
        assert!(matches!(
            c.evaluate_partitioned(&t, &bad),
            Err(ColumnarError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn partitioned_scan_on_empty_table() {
        let schema = Schema::shared(vec![Field::nullable("x", DataType::Float64)]).unwrap();
        let t = Table::new("t", schema);
        let c = CompiledPredicate::compile(&Predicate::lt("x", 1.0), t.schema()).unwrap();
        let parts = Partitioning::even(0, 4);
        let (sel, _) = c.evaluate_partitioned(&t, &parts).unwrap();
        assert!(sel.is_empty());
        let (count, _) = c.count_matches_partitioned(&t, &parts).unwrap();
        assert_eq!(count, 0);
    }

    /// The selection-walk oracle for the weighted kernels: push every
    /// selected row into a sketch in row order.
    fn weighted_oracle(
        table: &Table,
        column: Option<&str>,
        sel: &SelectionVector,
        probabilities: &[f64],
    ) -> WeightedMomentSketch {
        let mut sketch = WeightedMomentSketch::new();
        for row in sel.iter() {
            match column {
                None => sketch.push(1.0, probabilities[row]),
                Some(name) => {
                    let col = table.column(name).unwrap();
                    match col.get_f64(row) {
                        Some(v) => sketch.push(v, probabilities[row]),
                        None => sketch.push_null(),
                    }
                }
            }
        }
        sketch
    }

    fn assert_sketch_bits(a: &WeightedMomentSketch, b: &WeightedMomentSketch, context: &str) {
        assert_eq!(a.matched, b.matched, "matched: {context}");
        assert_eq!(a.count, b.count, "count: {context}");
        for (name, x, y) in [
            ("sum_vp", a.sum_vp, b.sum_vp),
            ("sum_inv_p", a.sum_inv_p, b.sum_inv_p),
            ("shift_vp", a.shift_vp, b.shift_vp),
            ("shift_inv_p", a.shift_inv_p, b.shift_inv_p),
            ("sum_dvp", a.sum_dvp, b.sum_dvp),
            ("sum_dvp_sq", a.sum_dvp_sq, b.sum_dvp_sq),
            ("sum_dinv_p", a.sum_dinv_p, b.sum_dinv_p),
            ("sum_dinv_p_sq", a.sum_dinv_p_sq, b.sum_dinv_p_sq),
            ("sum_dvp_dinv_p", a.sum_dvp_dinv_p, b.sum_dvp_dinv_p),
            ("min_p", a.min_p, b.min_p),
        ] {
            assert_eq!(x.to_bits(), y.to_bits(), "{name}: {context}");
        }
    }

    #[test]
    fn weighted_kernels_match_selection_walk_bitwise() {
        let t = test_table();
        let probabilities: Vec<f64> = (0..t.row_count())
            .map(|i| 0.001 * (1.0 + i as f64))
            .collect();
        let predicates = vec![
            Predicate::True,
            Predicate::False,
            Predicate::between("ra", 175.0, 191.0),
            Predicate::eq("class", "GALAXY").and(Predicate::lt("ra", 195.0)),
            Predicate::eq("class", "QSO").or(Predicate::eq("class", "STAR")),
            Predicate::IsNull("r_mag".into()),
        ];
        for p in predicates {
            let c = compiled(&p, &t);
            let sel = p.evaluate(&t).unwrap();
            let (count_sketch, _) = c.count_weighted(&t, &probabilities).unwrap();
            assert_sketch_bits(
                &count_sketch,
                &weighted_oracle(&t, None, &sel, &probabilities),
                &format!("count_weighted for {p}"),
            );
            let (agg_sketch, _) = c
                .filter_weighted_moments(&t, "r_mag", &probabilities)
                .unwrap();
            assert_sketch_bits(
                &agg_sketch,
                &weighted_oracle(&t, Some("r_mag"), &sel, &probabilities),
                &format!("filter_weighted_moments for {p}"),
            );
            for shards in [1usize, 2, 3, 7] {
                let parts = Partitioning::even(t.row_count(), shards);
                let (sharded, stats) = c
                    .count_weighted_partitioned(&t, &probabilities, &parts)
                    .unwrap();
                assert_eq!(stats.len(), parts.shard_count());
                assert_sketch_bits(
                    &sharded,
                    &count_sketch,
                    &format!("sharded count_weighted for {p} at {shards}"),
                );
                let (sharded, _) = c
                    .filter_weighted_moments_partitioned(&t, "r_mag", &probabilities, &parts)
                    .unwrap();
                assert_sketch_bits(
                    &sharded,
                    &agg_sketch,
                    &format!("sharded filter_weighted_moments for {p} at {shards}"),
                );
            }
        }
    }

    #[test]
    fn weighted_kernels_validate_inputs() {
        let t = test_table();
        let c = compiled(&Predicate::True, &t);
        let short = vec![0.1; t.row_count() - 1];
        assert!(matches!(
            c.count_weighted(&t, &short),
            Err(ColumnarError::LengthMismatch { .. })
        ));
        let probs = vec![0.1; t.row_count()];
        assert!(matches!(
            c.filter_weighted_moments(&t, "class", &probs),
            Err(ColumnarError::NotNumeric(_))
        ));
        let parts = Partitioning::even(t.row_count(), 2);
        assert!(c
            .filter_weighted_moments_partitioned(&t, "r_mag", &short, &parts)
            .is_err());
    }

    #[test]
    fn multi_scan_matches_serial_fused_paths_bitwise() {
        let t = test_table();
        let probabilities: Vec<f64> = (0..t.row_count())
            .map(|i| 0.001 * (1.0 + i as f64))
            .collect();
        let p_range = Predicate::between("ra", 175.0, 191.0);
        let p_conj = Predicate::eq("class", "GALAXY").and(Predicate::lt("ra", 195.0));
        let p_disj = Predicate::eq("class", "QSO").or(Predicate::eq("class", "STAR"));
        let c_range = compiled(&p_range, &t);
        let c_conj = compiled(&p_conj, &t);
        let c_disj = compiled(&p_disj, &t);

        let (serial_count, serial_count_stats) = c_range.count_matches(&t).unwrap();
        let (serial_moments, serial_moment_stats) = c_conj.filter_moments(&t, "r_mag").unwrap();
        let (serial_weighted, serial_weighted_stats) = c_disj
            .filter_weighted_moments(&t, "r_mag", &probabilities)
            .unwrap();

        for parts in [
            None,
            Some(Partitioning::even(t.row_count(), 1)),
            Some(Partitioning::even(t.row_count(), 2)),
            Some(Partitioning::even(t.row_count(), 3)),
        ] {
            let mut count = CountSink::default();
            let mut moments = MomentSink::new(numeric_source(&t, "r_mag").unwrap());
            let mut weighted =
                WeightedMomentSink::new(numeric_source(&t, "r_mag").unwrap(), &probabilities);
            let mut items = [
                MultiScanItem {
                    predicate: &c_range,
                    sink: &mut count,
                },
                MultiScanItem {
                    predicate: &c_conj,
                    sink: &mut moments,
                },
                MultiScanItem {
                    predicate: &c_disj,
                    sink: &mut weighted,
                },
            ];
            let results = multi_scan(&t, &mut items, parts.as_ref());
            let stats: Vec<ScanStats> = results.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(count.0, serial_count);
            assert_eq!(stats[0], serial_count_stats);
            assert_eq!(moments.sketch, serial_moments);
            assert_eq!(stats[1], serial_moment_stats);
            assert_eq!(stats[2], serial_weighted_stats);
            assert_sketch_bits(
                &weighted.sketch,
                &serial_weighted,
                &format!("multi_scan weighted at {parts:?}"),
            );
        }
    }

    #[test]
    fn multi_scan_isolates_per_item_errors() {
        let t = test_table();
        let good = compiled(&Predicate::gt("ra", 175.0), &t);
        let bad = compiled(&Predicate::gt("ra", f64::NAN), &t);
        let (serial_count, _) = good.count_matches(&t).unwrap();
        for parts in [None, Some(Partitioning::even(t.row_count(), 3))] {
            let mut ok_sink = CountSink::default();
            let mut bad_sink = CountSink::default();
            let mut items = [
                MultiScanItem {
                    predicate: &bad,
                    sink: &mut bad_sink,
                },
                MultiScanItem {
                    predicate: &good,
                    sink: &mut ok_sink,
                },
            ];
            let results = multi_scan(&t, &mut items, parts.as_ref());
            assert!(matches!(
                results[0],
                Err(ColumnarError::TypeMismatch { .. })
            ));
            assert!(results[1].is_ok());
            assert_eq!(ok_sink.0, serial_count);
        }
    }

    #[test]
    fn multi_scan_rejects_schema_and_partitioning_mismatches() {
        let t = test_table();
        let other_schema = Schema::shared(vec![Field::new("x", DataType::Int64)]).unwrap();
        let other = Table::new("other", other_schema);
        let foreign = CompiledPredicate::compile(&Predicate::True, other.schema()).unwrap();
        let local = compiled(&Predicate::True, &t);
        let mut foreign_sink = CountSink::default();
        let mut local_sink = CountSink::default();
        let mut items = [
            MultiScanItem {
                predicate: &foreign,
                sink: &mut foreign_sink,
            },
            MultiScanItem {
                predicate: &local,
                sink: &mut local_sink,
            },
        ];
        let results = multi_scan(&t, &mut items, None);
        assert!(matches!(results[0], Err(ColumnarError::SchemaMismatch(_))));
        assert!(results[1].is_ok());
        assert_eq!(local_sink.0, t.row_count());

        let bad_parts = Partitioning::even(t.row_count() + 1, 2);
        let mut sink = CountSink::default();
        let mut items = [MultiScanItem {
            predicate: &local,
            sink: &mut sink,
        }];
        let results = multi_scan(&t, &mut items, Some(&bad_parts));
        assert!(matches!(
            results[0],
            Err(ColumnarError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn multi_scan_on_empty_batch_and_empty_table() {
        let t = test_table();
        assert!(multi_scan(&t, &mut [], None).is_empty());
        let schema = Schema::shared(vec![Field::nullable("x", DataType::Float64)]).unwrap();
        let empty = Table::new("t", schema);
        let c = CompiledPredicate::compile(&Predicate::lt("x", 1.0), empty.schema()).unwrap();
        let mut sink = CountSink::default();
        let mut items = [MultiScanItem {
            predicate: &c,
            sink: &mut sink,
        }];
        let results = multi_scan(&empty, &mut items, Some(&Partitioning::even(0, 4)));
        assert!(results[0].is_ok());
        assert_eq!(sink.0, 0);
    }

    #[test]
    fn not_within_candidates() {
        let t = test_table();
        let p =
            Predicate::between("ra", 175.0, 191.0).and(Predicate::eq("class", "GALAXY").negate());
        let oracle = p.evaluate(&t).unwrap();
        let fast = compiled(&p, &t).evaluate(&t).unwrap();
        assert_eq!(oracle, fast);
        assert_eq!(fast.rows(), &[1]);
    }
}
