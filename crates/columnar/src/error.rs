//! Error types for the columnar substrate.

use std::fmt;

/// Errors produced by the columnar storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnarError {
    /// A column with the given name does not exist in the schema.
    ColumnNotFound(String),
    /// A table with the given name does not exist in the catalog.
    TableNotFound(String),
    /// A table with the given name already exists in the catalog.
    TableAlreadyExists(String),
    /// The value's type does not match the column's declared type.
    TypeMismatch {
        /// Column (or expression) the value was destined for.
        column: String,
        /// Declared type.
        expected: &'static str,
        /// Type of the offending value.
        found: &'static str,
    },
    /// A batch had columns whose lengths disagree.
    LengthMismatch {
        /// Expected number of rows.
        expected: usize,
        /// Number of rows found.
        found: usize,
    },
    /// A batch did not match the table schema (wrong arity or names).
    SchemaMismatch(String),
    /// Row index out of bounds.
    RowOutOfBounds {
        /// Requested row.
        row: usize,
        /// Number of rows available.
        len: usize,
    },
    /// An operation that requires a numeric column was applied to a
    /// non-numeric one.
    NotNumeric(String),
    /// Generic invalid-argument error.
    InvalidArgument(String),
}

impl fmt::Display for ColumnarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnarError::ColumnNotFound(name) => write!(f, "column not found: {name}"),
            ColumnarError::TableNotFound(name) => write!(f, "table not found: {name}"),
            ColumnarError::TableAlreadyExists(name) => {
                write!(f, "table already exists: {name}")
            }
            ColumnarError::TypeMismatch {
                column,
                expected,
                found,
            } => write!(
                f,
                "type mismatch for column {column}: expected {expected}, found {found}"
            ),
            ColumnarError::LengthMismatch { expected, found } => {
                write!(
                    f,
                    "length mismatch: expected {expected} rows, found {found}"
                )
            }
            ColumnarError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            ColumnarError::RowOutOfBounds { row, len } => {
                write!(f, "row index {row} out of bounds for table of {len} rows")
            }
            ColumnarError::NotNumeric(name) => {
                write!(f, "column {name} is not numeric")
            }
            ColumnarError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for ColumnarError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ColumnarError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_column_not_found() {
        let e = ColumnarError::ColumnNotFound("ra".into());
        assert_eq!(e.to_string(), "column not found: ra");
    }

    #[test]
    fn display_type_mismatch() {
        let e = ColumnarError::TypeMismatch {
            column: "dec".into(),
            expected: "Float64",
            found: "Int64",
        };
        assert!(e.to_string().contains("dec"));
        assert!(e.to_string().contains("Float64"));
        assert!(e.to_string().contains("Int64"));
    }

    #[test]
    fn display_length_mismatch() {
        let e = ColumnarError::LengthMismatch {
            expected: 10,
            found: 7,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("7"));
    }

    #[test]
    fn display_row_out_of_bounds() {
        let e = ColumnarError::RowOutOfBounds { row: 5, len: 3 };
        assert!(e.to_string().contains("5"));
        assert!(e.to_string().contains("3"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&ColumnarError::TableNotFound("x".into()));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            ColumnarError::NotNumeric("a".into()),
            ColumnarError::NotNumeric("a".into())
        );
        assert_ne!(
            ColumnarError::NotNumeric("a".into()),
            ColumnarError::NotNumeric("b".into())
        );
    }
}
