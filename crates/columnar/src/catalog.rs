//! A concurrent catalog of named tables.
//!
//! The catalog plays the role of MonetDB's SQL catalog for this reproduction:
//! the base warehouse tables live here, and the SciBORQ session looks base
//! tables up by name when a query has to fall through to layer 0 (the full
//! data) to reach a zero error margin.

use crate::error::{ColumnarError, Result};
use crate::table::Table;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A shared, thread-safe collection of named tables.
///
/// Tables are stored behind `Arc<RwLock<..>>` so that incremental loads
/// (writers) can proceed while exploration sessions (readers) evaluate
/// queries against other tables.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    inner: Arc<RwLock<BTreeMap<String, Arc<RwLock<Table>>>>>,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table. Fails if a table with the same name already exists.
    pub fn register(&self, table: Table) -> Result<Arc<RwLock<Table>>> {
        let mut guard = self.inner.write();
        let name = table.name().to_owned();
        if guard.contains_key(&name) {
            return Err(ColumnarError::TableAlreadyExists(name));
        }
        let handle = Arc::new(RwLock::new(table));
        guard.insert(name, Arc::clone(&handle));
        Ok(handle)
    }

    /// Replace (or insert) a table unconditionally, returning the previous
    /// handle if any.
    pub fn register_or_replace(&self, table: Table) -> Option<Arc<RwLock<Table>>> {
        let mut guard = self.inner.write();
        let name = table.name().to_owned();
        guard.insert(name, Arc::new(RwLock::new(table)))
    }

    /// Fetch a handle to a table by name.
    pub fn table(&self, name: &str) -> Result<Arc<RwLock<Table>>> {
        self.inner
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| ColumnarError::TableNotFound(name.to_owned()))
    }

    /// Remove a table from the catalog, returning its handle.
    pub fn drop_table(&self, name: &str) -> Result<Arc<RwLock<Table>>> {
        self.inner
            .write()
            .remove(name)
            .ok_or_else(|| ColumnarError::TableNotFound(name.to_owned()))
    }

    /// Whether a table with the given name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.inner.read().contains_key(name)
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Total approximate byte size of all tables in the catalog.
    pub fn byte_size(&self) -> usize {
        self.inner
            .read()
            .values()
            .map(|t| t.read().byte_size())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::value::DataType;

    fn table(name: &str) -> Table {
        let schema = Schema::shared(vec![Field::new("x", DataType::Int64)]).unwrap();
        Table::new(name, schema)
    }

    #[test]
    fn register_and_lookup() {
        let cat = Catalog::new();
        assert!(cat.is_empty());
        cat.register(table("photoobj")).unwrap();
        cat.register(table("field")).unwrap();
        assert_eq!(cat.len(), 2);
        assert!(cat.contains("photoobj"));
        assert!(!cat.contains("missing"));
        assert_eq!(cat.table_names(), vec!["field", "photoobj"]);
        let handle = cat.table("photoobj").unwrap();
        assert_eq!(handle.read().name(), "photoobj");
    }

    #[test]
    fn duplicate_registration_rejected() {
        let cat = Catalog::new();
        cat.register(table("t")).unwrap();
        assert!(matches!(
            cat.register(table("t")),
            Err(ColumnarError::TableAlreadyExists(_))
        ));
    }

    #[test]
    fn register_or_replace_swaps() {
        let cat = Catalog::new();
        assert!(cat.register_or_replace(table("t")).is_none());
        let old = cat.register_or_replace(table("t"));
        assert!(old.is_some());
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn missing_table_lookup_errors() {
        let cat = Catalog::new();
        assert!(matches!(
            cat.table("nope"),
            Err(ColumnarError::TableNotFound(_))
        ));
    }

    #[test]
    fn drop_table_removes() {
        let cat = Catalog::new();
        cat.register(table("t")).unwrap();
        cat.drop_table("t").unwrap();
        assert!(!cat.contains("t"));
        assert!(cat.drop_table("t").is_err());
    }

    #[test]
    fn writes_through_handle_are_visible() {
        let cat = Catalog::new();
        cat.register(table("t")).unwrap();
        {
            let handle = cat.table("t").unwrap();
            let mut guard = handle.write();
            guard.append_row(&[1i64.into()]).unwrap();
            guard.append_row(&[2i64.into()]).unwrap();
        }
        let handle = cat.table("t").unwrap();
        assert_eq!(handle.read().row_count(), 2);
        assert!(cat.byte_size() > 0);
    }

    #[test]
    fn catalog_clone_shares_state() {
        let cat = Catalog::new();
        let clone = cat.clone();
        cat.register(table("t")).unwrap();
        assert!(clone.contains("t"));
    }

    #[test]
    fn concurrent_register_and_read() {
        let cat = Catalog::new();
        std::thread::scope(|s| {
            for i in 0..8 {
                let cat = cat.clone();
                s.spawn(move || {
                    cat.register(table(&format!("t{i}"))).unwrap();
                    // reads interleave with writes from other threads
                    let _ = cat.table_names();
                });
            }
        });
        assert_eq!(cat.len(), 8);
    }
}
