//! Property-based equivalence suite for the sharded scan path: partitioned
//! execution (any shard count) must be **bit-identical** to single-threaded
//! execution — same selections, same candidate counts, and the same
//! `MomentSketch` down to the last bit of every float accumulator.
//!
//! Bit-identity (not approximate equality) holds by construction: shards are
//! contiguous row ranges merged in ascending order, so candidate lists
//! concatenate into exactly the single-threaded selection, and the
//! filter+aggregate fold replays matched rows in global row order — the same
//! push sequence as the unsharded kernel. These properties pin that
//! construction down against regressions (e.g. someone "optimising" the
//! merge into a per-shard float reduction, which is *not* associative).
//!
//! Error cases must error on both paths; which shard surfaces the error is
//! fixed (lowest shard wins), so errors are deterministic under any thread
//! scheduling.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sciborq_columnar::{
    CompareOp, CompiledPredicate, DataType, Field, MomentSketch, Partitioning, Predicate, Schema,
    Table, Value,
};

const COLUMNS: [&str; 5] = ["id", "ra", "mag", "class", "flag"];
const CLASSES: [&str; 4] = ["GALAXY", "STAR", "QSO", ""];

fn random_table(rng: &mut StdRng, max_rows: usize) -> Table {
    let schema = Schema::shared(vec![
        Field::nullable("id", DataType::Int64),
        Field::nullable("ra", DataType::Float64),
        Field::nullable("mag", DataType::Float64),
        Field::nullable("class", DataType::Utf8),
        Field::nullable("flag", DataType::Bool),
    ])
    .unwrap();
    let rows = rng.gen_range(0..max_rows);
    let mut t = Table::new("t", schema);
    for _ in 0..rows {
        let id: Value = if rng.gen_bool(0.2) {
            Value::Null
        } else {
            Value::Int64(rng.gen_range(-4i64..4))
        };
        let ra: Value = if rng.gen_bool(0.2) {
            Value::Null
        } else {
            Value::Float64(rng.gen_range(-5.0f64..5.0))
        };
        let mag: Value = if rng.gen_bool(0.25) {
            Value::Null
        } else if rng.gen_bool(0.05) {
            Value::Float64(f64::INFINITY)
        } else {
            Value::Float64(rng.gen_range(-3.0f64..3.0))
        };
        let class: Value = if rng.gen_bool(0.2) {
            Value::Null
        } else {
            Value::Utf8(CLASSES[rng.gen_range(0..CLASSES.len())].to_owned())
        };
        let flag: Value = if rng.gen_bool(0.2) {
            Value::Null
        } else {
            Value::Bool(rng.gen_bool(0.5))
        };
        t.append_row(&[id, ra, mag, class, flag]).unwrap();
    }
    t
}

fn random_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..10u32) {
        0 => Value::Null,
        1 | 2 => Value::Int64(rng.gen_range(-4i64..4)),
        3..=5 => Value::Float64(rng.gen_range(-5.0f64..5.0)),
        6 => Value::Float64(f64::NAN),
        7 => Value::Bool(rng.gen_bool(0.5)),
        _ => Value::Utf8(CLASSES[rng.gen_range(0..CLASSES.len())].to_owned()),
    }
}

fn random_op(rng: &mut StdRng) -> CompareOp {
    match rng.gen_range(0..6u32) {
        0 => CompareOp::Eq,
        1 => CompareOp::NotEq,
        2 => CompareOp::Lt,
        3 => CompareOp::LtEq,
        4 => CompareOp::Gt,
        _ => CompareOp::GtEq,
    }
}

fn random_column(rng: &mut StdRng) -> String {
    COLUMNS[rng.gen_range(0..COLUMNS.len())].to_owned()
}

fn random_predicate(rng: &mut StdRng, depth: u32) -> Predicate {
    let variants: u32 = if depth == 0 { 6 } else { 9 };
    match rng.gen_range(0..variants) {
        0 => Predicate::Compare {
            column: random_column(rng),
            op: random_op(rng),
            value: random_value(rng),
        },
        1 => Predicate::Between {
            column: random_column(rng),
            low: random_value(rng),
            high: random_value(rng),
        },
        2 => Predicate::IsNull(random_column(rng)),
        3 => Predicate::IsNotNull(random_column(rng)),
        4 => Predicate::True,
        5 => Predicate::False,
        6 => Predicate::And(
            (0..rng.gen_range(1..4usize))
                .map(|_| random_predicate(rng, depth - 1))
                .collect(),
        ),
        7 => Predicate::Or(
            (0..rng.gen_range(1..4usize))
                .map(|_| random_predicate(rng, depth - 1))
                .collect(),
        ),
        _ => Predicate::Not(Box::new(random_predicate(rng, depth - 1))),
    }
}

/// Assert every accumulator of two sketches matches bit for bit.
fn assert_sketch_bits(a: &MomentSketch, b: &MomentSketch, context: &dyn std::fmt::Display) {
    assert_eq!(a.matched, b.matched, "matched for {context}");
    assert_eq!(a.count, b.count, "count for {context}");
    for (name, x, y) in [
        ("sum", a.sum, b.sum),
        ("sum_sq", a.sum_sq, b.sum_sq),
        ("mean", a.mean, b.mean),
        ("m2", a.m2, b.m2),
        ("min", a.min, b.min),
        ("max", a.max, b.max),
    ] {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{name} diverges for {context}: {x} vs {y}"
        );
    }
}

/// Core property: for every shard count, the partitioned pipeline equals the
/// single-threaded pipeline bit for bit (or errors on both paths).
fn check_partitioned_equivalence(table: &Table, predicate: &Predicate, shards: usize) {
    let compiled =
        CompiledPredicate::compile(predicate, table.schema()).expect("all generated columns exist");
    let parts = Partitioning::even(table.row_count(), shards);
    let single = compiled.evaluate(table);
    let sharded = compiled.evaluate_partitioned(table, &parts);
    match (&single, &sharded) {
        (Ok(expected), Ok((actual, stats))) => {
            assert_eq!(
                expected,
                actual,
                "selection mismatch for {predicate} at {shards} shards on {} rows",
                table.row_count()
            );
            assert_eq!(stats.len(), parts.shard_count());
        }
        (Err(_), Err(_)) => return,
        (s, p) => panic!("error divergence for {predicate}: single {s:?} vs sharded {p:?}"),
    }

    let (single_count, _) = compiled.count_matches(table).expect("count succeeds");
    let (sharded_count, _) = compiled
        .count_matches_partitioned(table, &parts)
        .expect("sharded count succeeds");
    assert_eq!(
        single_count, sharded_count,
        "count mismatch for {predicate} at {shards} shards"
    );

    for agg_column in ["id", "mag"] {
        let (single_sketch, _) = compiled
            .filter_moments(table, agg_column)
            .expect("numeric aggregate column");
        let (sharded_sketch, _) = compiled
            .filter_moments_partitioned(table, agg_column, &parts)
            .expect("sharded numeric aggregate column");
        let context = format!("{predicate} agg({agg_column}) at {shards} shards");
        assert_sketch_bits(&single_sketch, &sharded_sketch, &context);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Random tables × random deep predicates × random shard counts.
    #[test]
    fn sharded_execution_is_bit_identical(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let table = random_table(&mut rng, 60);
        let predicate = random_predicate(&mut rng, 3);
        let shards = rng.gen_range(1..9usize);
        check_partitioned_equivalence(&table, &predicate, shards);
    }

    /// Conjunctions exercise per-shard candidate refinement and its
    /// short-circuit; shard counts beyond the row count clamp safely.
    #[test]
    fn sharded_conjunctions_are_bit_identical(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5ea5);
        let table = random_table(&mut rng, 120);
        let n = rng.gen_range(2..5usize);
        let predicate = Predicate::And(
            (0..n).map(|_| random_predicate(&mut rng, 1)).collect(),
        );
        for shards in [2, 4, 7, 200] {
            check_partitioned_equivalence(&table, &predicate, shards);
        }
    }
}

#[test]
fn empty_and_tiny_tables_across_shard_counts() {
    let mut rng = StdRng::seed_from_u64(11);
    for max_rows in [1usize, 2, 4] {
        let table = random_table(&mut rng, max_rows);
        for _ in 0..20 {
            let predicate = random_predicate(&mut rng, 2);
            for shards in [1, 2, 3, 8] {
                check_partitioned_equivalence(&table, &predicate, shards);
            }
        }
    }
}
