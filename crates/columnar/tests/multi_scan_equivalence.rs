//! Property-based equivalence suite for the shared multi-query scan: a
//! [`multi_scan`] batch must give every item **bit-identical** results to
//! running that item's serial fused entry point alone — same counts, same
//! `MomentSketch` / `WeightedMomentSketch` accumulators down to the last
//! float bit, and the same error outcomes — regardless of how many queries
//! share the sweep, how the rows split into batches, or how many shards the
//! sweep fans out over.
//!
//! This is the guarantee the serving layer leans on: batching concurrent
//! queries into one scan pass must be invisible in the answers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sciborq_columnar::{
    multi_scan, numeric_source, CompareOp, CompiledPredicate, CountSink, DataType, Field,
    MomentSink, MultiScanItem, Partitioning, Predicate, Schema, Table, Value, WeightedMomentSink,
    MULTI_SCAN_BATCH_ROWS,
};

const CLASSES: [&str; 4] = ["GALAXY", "STAR", "QSO", ""];

fn random_table(rng: &mut StdRng, rows: usize) -> Table {
    let schema = Schema::shared(vec![
        Field::nullable("id", DataType::Int64),
        Field::nullable("ra", DataType::Float64),
        Field::nullable("mag", DataType::Float64),
        Field::nullable("class", DataType::Utf8),
    ])
    .unwrap();
    let mut t = Table::new("t", schema);
    for _ in 0..rows {
        let id: Value = if rng.gen_bool(0.2) {
            Value::Null
        } else {
            Value::Int64(rng.gen_range(-4i64..4))
        };
        let ra: Value = if rng.gen_bool(0.2) {
            Value::Null
        } else {
            Value::Float64(rng.gen_range(-5.0f64..5.0))
        };
        let mag: Value = if rng.gen_bool(0.25) {
            Value::Null
        } else {
            Value::Float64(rng.gen_range(-3.0f64..3.0))
        };
        let class: Value = if rng.gen_bool(0.2) {
            Value::Null
        } else {
            Value::Utf8(CLASSES[rng.gen_range(0..CLASSES.len())].to_owned())
        };
        t.append_row(&[id, ra, mag, class]).unwrap();
    }
    t
}

fn random_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..10u32) {
        0 => Value::Null,
        1 | 2 => Value::Int64(rng.gen_range(-4i64..4)),
        3..=5 => Value::Float64(rng.gen_range(-5.0f64..5.0)),
        6 => Value::Float64(f64::NAN),
        7 => Value::Bool(rng.gen_bool(0.5)),
        _ => Value::Utf8(CLASSES[rng.gen_range(0..CLASSES.len())].to_owned()),
    }
}

fn random_op(rng: &mut StdRng) -> CompareOp {
    match rng.gen_range(0..6u32) {
        0 => CompareOp::Eq,
        1 => CompareOp::NotEq,
        2 => CompareOp::Lt,
        3 => CompareOp::LtEq,
        4 => CompareOp::Gt,
        _ => CompareOp::GtEq,
    }
}

fn random_column(rng: &mut StdRng) -> String {
    ["id", "ra", "mag", "class"][rng.gen_range(0..4usize)].to_owned()
}

fn random_predicate(rng: &mut StdRng, depth: u32) -> Predicate {
    let variants: u32 = if depth == 0 { 6 } else { 9 };
    match rng.gen_range(0..variants) {
        0 => Predicate::Compare {
            column: random_column(rng),
            op: random_op(rng),
            value: random_value(rng),
        },
        1 => Predicate::Between {
            column: random_column(rng),
            low: random_value(rng),
            high: random_value(rng),
        },
        2 => Predicate::IsNull(random_column(rng)),
        3 => Predicate::IsNotNull(random_column(rng)),
        4 => Predicate::True,
        5 => Predicate::False,
        6 => Predicate::And(
            (0..rng.gen_range(1..4usize))
                .map(|_| random_predicate(rng, depth - 1))
                .collect(),
        ),
        7 => Predicate::Or(
            (0..rng.gen_range(1..4usize))
                .map(|_| random_predicate(rng, depth - 1))
                .collect(),
        ),
        _ => Predicate::Not(Box::new(random_predicate(rng, depth - 1))),
    }
}

/// Run `predicates` through one shared sweep, three sink flavours per
/// predicate (count, moments over `mag`, weighted moments over `mag`), and
/// assert each slot bit-matches its serial fused entry point — including
/// error agreement.
fn check_multi_scan_equivalence(
    table: &Table,
    predicates: &[Predicate],
    parts: Option<&Partitioning>,
) {
    let compiled: Vec<CompiledPredicate> = predicates
        .iter()
        .map(|p| CompiledPredicate::compile(p, table.schema()).expect("columns exist"))
        .collect();
    let probabilities: Vec<f64> = (0..table.row_count())
        .map(|i| 0.0005 * (1.0 + (i % 64) as f64))
        .collect();

    let mut counts: Vec<CountSink> = compiled.iter().map(|_| CountSink::default()).collect();
    let mut moments: Vec<MomentSink<'_>> = compiled
        .iter()
        .map(|_| MomentSink::new(numeric_source(table, "mag").unwrap()))
        .collect();
    let mut weighted: Vec<WeightedMomentSink<'_>> = compiled
        .iter()
        .map(|_| WeightedMomentSink::new(numeric_source(table, "mag").unwrap(), &probabilities))
        .collect();

    let mut items: Vec<MultiScanItem<'_, '_>> = Vec::new();
    for (((c, count), moment), weight) in compiled
        .iter()
        .zip(counts.iter_mut())
        .zip(moments.iter_mut())
        .zip(weighted.iter_mut())
    {
        items.push(MultiScanItem {
            predicate: c,
            sink: count,
        });
        items.push(MultiScanItem {
            predicate: c,
            sink: moment,
        });
        items.push(MultiScanItem {
            predicate: c,
            sink: weight,
        });
    }
    let results = multi_scan(table, &mut items, parts);
    drop(items);

    for (i, (c, p)) in compiled.iter().zip(predicates).enumerate() {
        let context = format!(
            "{p} in a {}-query batch over {} rows ({})",
            predicates.len(),
            table.row_count(),
            match parts {
                None => "serial".to_owned(),
                Some(parts) => format!("{} shards", parts.shard_count()),
            }
        );

        match (c.count_matches(table), &results[3 * i]) {
            (Ok((serial, _)), Ok(_)) => {
                assert_eq!(counts[i].0, serial, "count for {context}");
            }
            (Err(_), Err(_)) => {}
            (s, m) => panic!("count error divergence for {context}: {s:?} vs {m:?}"),
        }

        match (c.filter_moments(table, "mag"), &results[3 * i + 1]) {
            (Ok((serial, _)), Ok(_)) => {
                let shared = &moments[i].sketch;
                assert_eq!(shared.matched, serial.matched, "matched for {context}");
                assert_eq!(shared.count, serial.count, "value count for {context}");
                for (name, x, y) in [
                    ("sum", shared.sum, serial.sum),
                    ("sum_sq", shared.sum_sq, serial.sum_sq),
                    ("mean", shared.mean, serial.mean),
                    ("m2", shared.m2, serial.m2),
                    ("min", shared.min, serial.min),
                    ("max", shared.max, serial.max),
                ] {
                    assert_eq!(x.to_bits(), y.to_bits(), "{name} for {context}");
                }
            }
            (Err(_), Err(_)) => {}
            (s, m) => panic!("moments error divergence for {context}: {s:?} vs {m:?}"),
        }

        match (
            c.filter_weighted_moments(table, "mag", &probabilities),
            &results[3 * i + 2],
        ) {
            (Ok((serial, _)), Ok(_)) => {
                let shared = &weighted[i].sketch;
                assert_eq!(shared.matched, serial.matched, "w matched for {context}");
                assert_eq!(shared.count, serial.count, "w count for {context}");
                for (name, x, y) in [
                    ("sum_vp", shared.sum_vp, serial.sum_vp),
                    ("sum_inv_p", shared.sum_inv_p, serial.sum_inv_p),
                    ("sum_dvp", shared.sum_dvp, serial.sum_dvp),
                    ("sum_dvp_sq", shared.sum_dvp_sq, serial.sum_dvp_sq),
                    ("sum_dinv_p", shared.sum_dinv_p, serial.sum_dinv_p),
                    ("sum_dinv_p_sq", shared.sum_dinv_p_sq, serial.sum_dinv_p_sq),
                    (
                        "sum_dvp_dinv_p",
                        shared.sum_dvp_dinv_p,
                        serial.sum_dvp_dinv_p,
                    ),
                    ("min_p", shared.min_p, serial.min_p),
                ] {
                    assert_eq!(x.to_bits(), y.to_bits(), "{name} for {context}");
                }
            }
            (Err(_), Err(_)) => {}
            (s, m) => panic!("weighted error divergence for {context}: {s:?} vs {m:?}"),
        }
    }
}

/// Random small tables × random (possibly erroring, possibly nested)
/// predicate batches × serial and sharded sweeps.
#[test]
fn shared_sweeps_are_bit_identical_on_random_batches() {
    for seed in 0u64..150 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
        let rows = rng.gen_range(0..80);
        let table = random_table(&mut rng, rows);
        let predicates: Vec<Predicate> = (0..rng.gen_range(1..5usize))
            .map(|_| random_predicate(&mut rng, 2))
            .collect();
        check_multi_scan_equivalence(&table, &predicates, None);
        let shards = rng.gen_range(1..7usize);
        let parts = Partitioning::even(table.row_count(), shards);
        check_multi_scan_equivalence(&table, &predicates, Some(&parts));
    }
}

/// A table larger than one scan batch: the serial sweep crosses several
/// `MULTI_SCAN_BATCH_ROWS` boundaries and must still reproduce the serial
/// single-pass fold bit for bit (batch boundaries are the seam where a
/// wrongly ordered replay would first show).
#[test]
fn batch_boundaries_preserve_bit_identity() {
    let mut rng = StdRng::seed_from_u64(42);
    let rows = 2 * MULTI_SCAN_BATCH_ROWS + 1_237;
    let table = random_table(&mut rng, rows);
    let predicates = vec![
        Predicate::True,
        Predicate::between("ra", -2.0, 3.0),
        Predicate::gt("mag", 0.0).and(Predicate::eq("class", "GALAXY")),
        Predicate::eq("class", "STAR").or(Predicate::lt("id", 0)),
        Predicate::IsNull("mag".into()),
        Predicate::eq("class", "QSO").negate(),
    ];
    check_multi_scan_equivalence(&table, &predicates, None);
    for shards in [2usize, 3, 5] {
        let parts = Partitioning::even(rows, shards);
        check_multi_scan_equivalence(&table, &predicates, Some(&parts));
    }
}
