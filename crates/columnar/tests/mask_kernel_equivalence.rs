//! Chunked bitmask kernel equivalence: every `mask_*` refinement kernel
//! must agree, row for row, with a scalar oracle that walks the covered
//! range one row at a time and applies the predicate semantics of
//! `Predicate::evaluate` (NULL never matches; comparisons on the cell
//! value; dictionary predicates compared through the decoded string).
//!
//! Each trial draws a table length straddling the 64-row word boundary,
//! a shard window `start..end` that is deliberately unaligned (the head-
//! and tail-word masking edge), and a validity bitmap at mixed NULL
//! density. Both the surviving row set (`MatchMask::to_rows`) and the
//! `MaskScan` accounting (`visited` = incoming popcount, `remaining` =
//! outgoing popcount) are asserted. NaN constants, which the fallible
//! kernels must reject whenever a valid candidate exists, get dedicated
//! cases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sciborq_columnar::kernels::{
    mask_all, mask_any_valid, mask_cmp_bool, mask_cmp_f64, mask_cmp_i64, mask_cmp_i64_f64,
    mask_cmp_str, mask_dict, mask_is_not_null, mask_is_null, mask_range_bool, mask_range_f64,
    mask_range_i64, mask_range_str,
};
use sciborq_columnar::{Bitmap, CompareOp, DictPred, MaskScan, MatchMask, NumBound};

const OPS: [CompareOp; 6] = [
    CompareOp::Eq,
    CompareOp::NotEq,
    CompareOp::Lt,
    CompareOp::LtEq,
    CompareOp::Gt,
    CompareOp::GtEq,
];

/// A randomly drawn shard window plus validity pattern over `len` rows.
struct Fixture {
    start: usize,
    end: usize,
    validity: Option<Bitmap>,
}

impl Fixture {
    fn draw(rng: &mut StdRng, len: usize) -> Fixture {
        let start = if len == 0 { 0 } else { rng.gen_range(0..len) };
        let end = rng.gen_range(start..=len);
        let validity = if rng.gen_bool(0.3) {
            None
        } else {
            let mut v = Bitmap::with_len(len, true);
            for row in 0..len {
                if rng.gen_bool(0.25) {
                    v.set(row, false);
                }
            }
            Some(v)
        };
        Fixture {
            start,
            end,
            validity,
        }
    }

    fn mask(&self) -> MatchMask {
        MatchMask::coverage(self.start, self.end)
    }

    fn is_valid(&self, row: usize) -> bool {
        self.validity.as_ref().is_none_or(|v| v.get(row))
    }

    /// Scalar oracle: rows of the window that are valid and match `pred`.
    fn oracle_rows(&self, pred: impl Fn(usize) -> bool) -> Vec<usize> {
        (self.start..self.end)
            .filter(|&row| self.is_valid(row) && pred(row))
            .collect()
    }

    /// Assert one refinement outcome against the oracle: the incoming
    /// popcount is the whole window, the survivors are exactly `expected`.
    fn check(&self, mask: &MatchMask, scan: MaskScan, expected: &[usize]) {
        assert_eq!(scan.visited, self.end - self.start, "visited accounting");
        assert_eq!(scan.remaining, expected.len(), "remaining accounting");
        assert_eq!(mask.to_rows(), expected, "surviving row set");
    }
}

fn cmp_ok<T: PartialOrd>(op: CompareOp, v: T, bound: T) -> bool {
    match op {
        CompareOp::Eq => v == bound,
        CompareOp::NotEq => v != bound,
        CompareOp::Lt => v < bound,
        CompareOp::LtEq => v <= bound,
        CompareOp::Gt => v > bound,
        CompareOp::GtEq => v >= bound,
    }
}

/// Lengths that straddle the word-size edges: empty, sub-word, exactly one
/// and two words, and off-by-one around both.
fn edge_lengths() -> Vec<usize> {
    vec![0, 1, 5, 63, 64, 65, 127, 128, 130]
}

#[test]
fn null_and_trivial_kernels_match_oracle() {
    let mut rng = StdRng::seed_from_u64(0xC1B0_52B1);
    for len in edge_lengths() {
        for _ in 0..8 {
            let fx = Fixture::draw(&mut rng, len);

            // mask_all: everything survives, nothing is even inspected.
            let mut m = fx.mask();
            let scan = mask_all(&m);
            fx.check(&m, scan, &(fx.start..fx.end).collect::<Vec<_>>());

            // mask_is_not_null == the valid rows of the window.
            m = fx.mask();
            let scan = mask_is_not_null(fx.validity.as_ref(), &mut m);
            fx.check(&m, scan, &fx.oracle_rows(|_| true));

            // mask_is_null == the invalid rows of the window.
            m = fx.mask();
            let scan = mask_is_null(fx.validity.as_ref(), &mut m);
            let nulls: Vec<usize> = (fx.start..fx.end).filter(|&r| !fx.is_valid(r)).collect();
            assert_eq!(scan.visited, fx.end - fx.start);
            assert_eq!(scan.remaining, nulls.len());
            assert_eq!(m.to_rows(), nulls);

            // mask_any_valid == "does the window hold any valid row".
            let m = fx.mask();
            assert_eq!(
                mask_any_valid(fx.validity.as_ref(), &m),
                !fx.oracle_rows(|_| true).is_empty()
            );
        }
    }
}

#[test]
fn i64_compare_and_range_kernels_match_oracle() {
    let mut rng = StdRng::seed_from_u64(1);
    for len in edge_lengths() {
        for _ in 0..6 {
            let fx = Fixture::draw(&mut rng, len);
            let values: Vec<i64> = (0..len).map(|_| rng.gen_range(-4i64..4)).collect();

            for op in OPS {
                let bound = rng.gen_range(-4i64..4);
                let mut m = fx.mask();
                let scan = mask_cmp_i64(&values, fx.validity.as_ref(), op, bound, &mut m);
                fx.check(&m, scan, &fx.oracle_rows(|r| cmp_ok(op, values[r], bound)));

                // Widened variant: the same column against a float constant.
                let fbound = bound as f64 + 0.5;
                let mut m = fx.mask();
                let scan = mask_cmp_i64_f64(&values, fx.validity.as_ref(), op, fbound, &mut m)
                    .expect("finite bound never errors");
                fx.check(
                    &m,
                    scan,
                    &fx.oracle_rows(|r| cmp_ok(op, values[r] as f64, fbound)),
                );
            }

            // Inclusive range, in every bound-type combination.
            let (lo, hi) = (rng.gen_range(-4i64..1), rng.gen_range(-1i64..4));
            let bounds = [
                (NumBound::I64(lo), NumBound::I64(hi)),
                (NumBound::I64(lo), NumBound::F64(hi as f64 + 0.5)),
                (NumBound::F64(lo as f64 - 0.5), NumBound::I64(hi)),
                (
                    NumBound::F64(lo as f64 - 0.5),
                    NumBound::F64(hi as f64 + 0.5),
                ),
            ];
            for (low, high) in bounds {
                let mut m = fx.mask();
                let scan = mask_range_i64(&values, fx.validity.as_ref(), low, high, &mut m)
                    .expect("finite bounds never error");
                fx.check(
                    &m,
                    scan,
                    &fx.oracle_rows(|r| {
                        let v = values[r] as f64;
                        low.as_f64() <= v && v <= high.as_f64()
                    }),
                );
            }
        }
    }
}

#[test]
fn f64_compare_and_range_kernels_match_oracle() {
    let mut rng = StdRng::seed_from_u64(2);
    for len in edge_lengths() {
        for _ in 0..6 {
            let fx = Fixture::draw(&mut rng, len);
            let values: Vec<f64> = (0..len).map(|_| rng.gen_range(-4.0..4.0)).collect();

            for op in OPS {
                let bound = rng.gen_range(-4.0..4.0);
                let mut m = fx.mask();
                let scan = mask_cmp_f64(&values, fx.validity.as_ref(), op, bound, &mut m)
                    .expect("finite data and bound never error");
                fx.check(&m, scan, &fx.oracle_rows(|r| cmp_ok(op, values[r], bound)));
            }

            let (low, high) = (rng.gen_range(-4.0..0.0), rng.gen_range(0.0..4.0));
            let mut m = fx.mask();
            let scan = mask_range_f64(&values, fx.validity.as_ref(), low, high, &mut m)
                .expect("finite bounds never error");
            fx.check(
                &m,
                scan,
                &fx.oracle_rows(|r| low <= values[r] && values[r] <= high),
            );
        }
    }
}

#[test]
fn bool_kernels_match_oracle() {
    let mut rng = StdRng::seed_from_u64(3);
    for len in edge_lengths() {
        for _ in 0..6 {
            let fx = Fixture::draw(&mut rng, len);
            let values: Vec<bool> = (0..len).map(|_| rng.gen_bool(0.5)).collect();

            for op in OPS {
                let bound = rng.gen_bool(0.5);
                let mut m = fx.mask();
                let scan = mask_cmp_bool(&values, fx.validity.as_ref(), op, bound, &mut m);
                fx.check(&m, scan, &fx.oracle_rows(|r| cmp_ok(op, values[r], bound)));
            }

            for (low, high) in [(false, false), (false, true), (true, true), (true, false)] {
                let mut m = fx.mask();
                let scan = mask_range_bool(&values, fx.validity.as_ref(), low, high, &mut m);
                fx.check(
                    &m,
                    scan,
                    &fx.oracle_rows(|r| low <= values[r] && values[r] <= high),
                );
            }
        }
    }
}

#[test]
fn string_kernels_match_oracle() {
    const WORDS: [&str; 5] = ["", "GALAXY", "QSO", "STAR", "UNKNOWN"];
    let mut rng = StdRng::seed_from_u64(4);
    for len in edge_lengths() {
        for _ in 0..6 {
            let fx = Fixture::draw(&mut rng, len);
            let values: Vec<String> = (0..len)
                .map(|_| WORDS[rng.gen_range(0..WORDS.len())].to_owned())
                .collect();

            for op in OPS {
                let bound = WORDS[rng.gen_range(0..WORDS.len())];
                let mut m = fx.mask();
                let scan = mask_cmp_str(&values, fx.validity.as_ref(), op, bound, &mut m);
                fx.check(
                    &m,
                    scan,
                    &fx.oracle_rows(|r| cmp_ok(op, values[r].as_str(), bound)),
                );
            }

            let (mut low, mut high) = (
                WORDS[rng.gen_range(0..WORDS.len())],
                WORDS[rng.gen_range(0..WORDS.len())],
            );
            if low > high {
                std::mem::swap(&mut low, &mut high);
            }
            let mut m = fx.mask();
            let scan = mask_range_str(&values, fx.validity.as_ref(), low, high, &mut m);
            fx.check(
                &m,
                scan,
                &fx.oracle_rows(|r| low <= values[r].as_str() && values[r].as_str() <= high),
            );
        }
    }
}

#[test]
fn dict_kernel_matches_string_oracle() {
    // Sorted, deduplicated dictionary: code order is lexicographic order,
    // which is the invariant `DictPred` translation relies on.
    let dict: Vec<String> = ["", "GALAXY", "QSO", "STAR"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let probes = ["", "AAA", "GALAXY", "QSO", "STAR", "ZZZ"];
    let mut rng = StdRng::seed_from_u64(5);
    for len in edge_lengths() {
        for _ in 0..6 {
            let fx = Fixture::draw(&mut rng, len);
            let codes: Vec<u32> = (0..len)
                .map(|_| rng.gen_range(0..dict.len() as u32))
                .collect();
            let decoded = |r: usize| dict[codes[r] as usize].as_str();

            for op in OPS {
                let bound = probes[rng.gen_range(0..probes.len())];
                let pred = DictPred::compare(&dict, op, bound);
                let mut m = fx.mask();
                let scan = mask_dict(&codes, fx.validity.as_ref(), pred, &mut m);
                fx.check(&m, scan, &fx.oracle_rows(|r| cmp_ok(op, decoded(r), bound)));
            }

            let (mut low, mut high) = (
                probes[rng.gen_range(0..probes.len())],
                probes[rng.gen_range(0..probes.len())],
            );
            if low > high {
                std::mem::swap(&mut low, &mut high);
            }
            let pred = DictPred::range(&dict, low, high);
            let mut m = fx.mask();
            let scan = mask_dict(&codes, fx.validity.as_ref(), pred, &mut m);
            fx.check(
                &m,
                scan,
                &fx.oracle_rows(|r| low <= decoded(r) && decoded(r) <= high),
            );
        }
    }
}

#[test]
fn nan_constants_error_iff_a_valid_candidate_exists() {
    let values = vec![1.0f64; 70];
    let ints = vec![1i64; 70];

    // Valid candidates present: every fallible kernel must reject NaN.
    let mut m = MatchMask::coverage(3, 70);
    assert!(mask_cmp_f64(&values, None, CompareOp::Eq, f64::NAN, &mut m).is_err());
    let mut m = MatchMask::coverage(3, 70);
    assert!(mask_cmp_i64_f64(&ints, None, CompareOp::Lt, f64::NAN, &mut m).is_err());
    let mut m = MatchMask::coverage(3, 70);
    assert!(mask_range_f64(&values, None, f64::NAN, 1.0, &mut m).is_err());
    let mut m = MatchMask::coverage(3, 70);
    assert!(mask_range_i64(
        &ints,
        None,
        NumBound::F64(f64::NAN),
        NumBound::I64(9),
        &mut m
    )
    .is_err());

    // All candidates NULL: the unordered comparison never happens; the
    // kernels return an empty (cleared) refinement instead of erroring.
    let all_null = Bitmap::with_len(70, false);
    let mut m = MatchMask::coverage(3, 70);
    let scan = mask_cmp_f64(&values, Some(&all_null), CompareOp::Eq, f64::NAN, &mut m)
        .expect("no valid candidate, no unordered comparison");
    assert_eq!((scan.visited, scan.remaining), (67, 0));
    assert!(m.to_rows().is_empty());
}
