//! Property-based equivalence suite for the streamed weighted
//! (Hansen–Hurwitz) estimation path: the fused weighted kernels
//! (`CompiledPredicate::{count_weighted, filter_weighted_moments}` and their
//! `_partitioned` variants) must agree with the selection-based oracle — the
//! scalar `Predicate::evaluate` followed by a walk over the selected rows
//! that materialises `WeightedObservation`s for the slice-based
//! `WeightedEstimator`.
//!
//! Both paths fold the same expansions (`v/p`, `(v/p)²`, `1/p`, …) in the
//! same row order, so the comparison is **bit-identical** — sketch
//! accumulators and finished estimates alike — and stays bit-identical
//! across shard counts 1/2/3/7 because the partitioned kernels replay
//! matched rows in global row order.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sciborq_columnar::{
    CompareOp, CompiledPredicate, DataType, Field, Partitioning, Predicate, Schema, Table, Value,
    WeightedMomentSketch,
};
use sciborq_stats::{WeightedEstimator, WeightedObservation};

const COLUMNS: [&str; 4] = ["id", "ra", "mag", "class"];
const CLASSES: [&str; 4] = ["GALAXY", "STAR", "QSO", ""];
const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

fn random_table(rng: &mut StdRng, max_rows: usize) -> Table {
    let schema = Schema::shared(vec![
        Field::nullable("id", DataType::Int64),
        Field::nullable("ra", DataType::Float64),
        Field::nullable("mag", DataType::Float64),
        Field::nullable("class", DataType::Utf8),
    ])
    .unwrap();
    let rows = rng.gen_range(0..max_rows);
    let mut t = Table::new("t", schema);
    for _ in 0..rows {
        let id: Value = if rng.gen_bool(0.2) {
            Value::Null
        } else {
            Value::Int64(rng.gen_range(-4i64..4))
        };
        let ra: Value = if rng.gen_bool(0.2) {
            Value::Null
        } else {
            Value::Float64(rng.gen_range(-5.0f64..5.0))
        };
        let mag: Value = if rng.gen_bool(0.25) {
            Value::Null
        } else {
            Value::Float64(rng.gen_range(-3.0f64..3.0))
        };
        let class: Value = if rng.gen_bool(0.2) {
            Value::Null
        } else {
            Value::Utf8(CLASSES[rng.gen_range(0..CLASSES.len())].to_owned())
        };
        t.append_row(&[id, ra, mag, class]).unwrap();
    }
    t
}

/// Skewed but valid single-draw probabilities (three orders of magnitude of
/// spread, like a focused workload's interest weights).
fn random_probabilities(rng: &mut StdRng, rows: usize) -> Vec<f64> {
    (0..rows)
        .map(|_| 10f64.powf(rng.gen_range(-6.0f64..-3.0)))
        .collect()
}

fn random_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..8u32) {
        0 => Value::Null,
        1 | 2 => Value::Int64(rng.gen_range(-4i64..4)),
        3..=5 => Value::Float64(rng.gen_range(-5.0f64..5.0)),
        _ => Value::Utf8(CLASSES[rng.gen_range(0..CLASSES.len())].to_owned()),
    }
}

fn random_op(rng: &mut StdRng) -> CompareOp {
    match rng.gen_range(0..6u32) {
        0 => CompareOp::Eq,
        1 => CompareOp::NotEq,
        2 => CompareOp::Lt,
        3 => CompareOp::LtEq,
        4 => CompareOp::Gt,
        _ => CompareOp::GtEq,
    }
}

fn random_column(rng: &mut StdRng) -> String {
    COLUMNS[rng.gen_range(0..COLUMNS.len())].to_owned()
}

fn random_predicate(rng: &mut StdRng, depth: u32) -> Predicate {
    let variants: u32 = if depth == 0 { 6 } else { 9 };
    match rng.gen_range(0..variants) {
        0 => Predicate::Compare {
            column: random_column(rng),
            op: random_op(rng),
            value: random_value(rng),
        },
        1 => Predicate::Between {
            column: random_column(rng),
            low: random_value(rng),
            high: random_value(rng),
        },
        2 => Predicate::IsNull(random_column(rng)),
        3 => Predicate::IsNotNull(random_column(rng)),
        4 => Predicate::True,
        5 => Predicate::False,
        6 => Predicate::And(
            (0..rng.gen_range(1..4usize))
                .map(|_| random_predicate(rng, depth - 1))
                .collect(),
        ),
        7 => Predicate::Or(
            (0..rng.gen_range(1..4usize))
                .map(|_| random_predicate(rng, depth - 1))
                .collect(),
        ),
        _ => Predicate::Not(Box::new(random_predicate(rng, depth - 1))),
    }
}

fn assert_sketch_bits(
    streamed: &WeightedMomentSketch,
    oracle: &WeightedMomentSketch,
    context: &dyn std::fmt::Display,
) {
    assert_eq!(streamed.matched, oracle.matched, "matched for {context}");
    assert_eq!(streamed.count, oracle.count, "count for {context}");
    for (name, x, y) in [
        ("sum_vp", streamed.sum_vp, oracle.sum_vp),
        ("sum_inv_p", streamed.sum_inv_p, oracle.sum_inv_p),
        ("shift_vp", streamed.shift_vp, oracle.shift_vp),
        ("shift_inv_p", streamed.shift_inv_p, oracle.shift_inv_p),
        ("sum_dvp", streamed.sum_dvp, oracle.sum_dvp),
        ("sum_dvp_sq", streamed.sum_dvp_sq, oracle.sum_dvp_sq),
        ("sum_dinv_p", streamed.sum_dinv_p, oracle.sum_dinv_p),
        (
            "sum_dinv_p_sq",
            streamed.sum_dinv_p_sq,
            oracle.sum_dinv_p_sq,
        ),
        (
            "sum_dvp_dinv_p",
            streamed.sum_dvp_dinv_p,
            oracle.sum_dvp_dinv_p,
        ),
        ("min_p", streamed.min_p, oracle.min_p),
    ] {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{name} diverges for {context}: {x} vs {y}"
        );
    }
}

/// The selection-based oracle: walk the scalar oracle's selection in row
/// order, pushing the same expansions the weighted kernels accumulate.
fn oracle_sketch(
    table: &Table,
    column: Option<&str>,
    selection: &sciborq_columnar::SelectionVector,
    probabilities: &[f64],
) -> WeightedMomentSketch {
    let mut sketch = WeightedMomentSketch::new();
    for row in selection.iter() {
        match column {
            None => sketch.push(1.0, probabilities[row]),
            Some(name) => {
                let col = table.column(name).unwrap();
                match col.get_f64(row) {
                    Some(v) => sketch.push(v, probabilities[row]),
                    None => sketch.push_null(),
                }
            }
        }
    }
    sketch
}

/// Core property: streamed weighted sketches and estimates equal the
/// selection-based oracle bit for bit, serially and at every shard count.
fn check_weighted_equivalence(table: &Table, predicate: &Predicate, probabilities: &[f64]) {
    let compiled =
        CompiledPredicate::compile(predicate, table.schema()).expect("all generated columns exist");
    let oracle_sel = predicate.evaluate(table);
    let streamed_count = compiled.count_weighted(table, probabilities);
    let (sel, (count_sketch, _)) = match (oracle_sel, streamed_count) {
        (Ok(sel), Ok(ok)) => (sel, ok),
        (Err(_), Err(_)) => return,
        (s, p) => panic!("error divergence for {predicate}: oracle {s:?} vs streamed {p:?}"),
    };

    // --- COUNT: sketch and finished estimate -------------------------------
    let count_oracle = oracle_sketch(table, None, &sel, probabilities);
    assert_sketch_bits(&count_sketch, &count_oracle, &format!("count({predicate})"));
    let observations: Vec<WeightedObservation> = sel
        .iter()
        .map(|i| WeightedObservation {
            value: 1.0,
            probability: probabilities[i],
        })
        .collect();
    if table.row_count() > 0 {
        let oracle_est =
            WeightedEstimator::estimate_total_zero_extended(&observations, table.row_count())
                .expect("valid probabilities");
        let streamed_est =
            WeightedEstimator::estimate_total_from_sketch(&count_sketch, table.row_count())
                .expect("valid sketch");
        assert_eq!(
            oracle_est.value.to_bits(),
            streamed_est.value.to_bits(),
            "count estimate for {predicate}"
        );
        assert_eq!(
            oracle_est.standard_error.to_bits(),
            streamed_est.standard_error.to_bits(),
            "count standard error for {predicate}"
        );
    }

    // --- SUM / AVG over both numeric columns -------------------------------
    for agg_column in ["id", "mag"] {
        let (agg_sketch, _) = compiled
            .filter_weighted_moments(table, agg_column, probabilities)
            .expect("numeric aggregate column");
        let agg_oracle = oracle_sketch(table, Some(agg_column), &sel, probabilities);
        assert_sketch_bits(
            &agg_sketch,
            &agg_oracle,
            &format!("agg({agg_column}) for {predicate}"),
        );
        // Hájek mean: slice-based estimator over the selection walk vs the
        // streamed sketch — equal bits or equal errors
        let matched: Vec<WeightedObservation> = sel
            .iter()
            .filter_map(|i| {
                table
                    .column(agg_column)
                    .unwrap()
                    .get_f64(i)
                    .map(|value| WeightedObservation {
                        value,
                        probability: probabilities[i],
                    })
            })
            .collect();
        let oracle_mean = WeightedEstimator::estimate_mean(&matched);
        let streamed_mean = WeightedEstimator::estimate_mean_from_sketch(&agg_sketch);
        match (oracle_mean, streamed_mean) {
            (Ok(a), Ok(b)) => {
                assert_eq!(
                    a.value.to_bits(),
                    b.value.to_bits(),
                    "mean for {predicate} over {agg_column}"
                );
                assert_eq!(
                    a.standard_error.to_bits(),
                    b.standard_error.to_bits(),
                    "mean se for {predicate} over {agg_column}"
                );
            }
            (Err(_), Err(_)) => {}
            (a, b) => panic!("mean divergence for {predicate}: oracle {a:?} vs streamed {b:?}"),
        }

        // --- sharded: bit-identical to serial at every shard count ---------
        for shards in SHARD_COUNTS {
            let parts = Partitioning::even(table.row_count(), shards);
            let (sharded, stats) = compiled
                .count_weighted_partitioned(table, probabilities, &parts)
                .expect("sharded weighted count");
            assert_eq!(stats.len(), parts.shard_count());
            assert_sketch_bits(
                &sharded,
                &count_sketch,
                &format!("sharded count for {predicate} at {shards}"),
            );
            let (sharded, _) = compiled
                .filter_weighted_moments_partitioned(table, agg_column, probabilities, &parts)
                .expect("sharded weighted moments");
            assert_sketch_bits(
                &sharded,
                &agg_sketch,
                &format!("sharded agg({agg_column}) for {predicate} at {shards}"),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Random tables × random deep predicates × skewed probabilities.
    #[test]
    fn streamed_weighted_estimation_matches_selection_oracle(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let table = random_table(&mut rng, 60);
        let probabilities = random_probabilities(&mut rng, table.row_count());
        let predicate = random_predicate(&mut rng, 3);
        check_weighted_equivalence(&table, &predicate, &probabilities);
    }

    /// Conjunctions drive the candidate-list refinement path: the terminal
    /// conjunct streams straight into the weighted sink.
    #[test]
    fn weighted_conjunction_refinement_matches_oracle(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xb1a5ed);
        let table = random_table(&mut rng, 120);
        let probabilities = random_probabilities(&mut rng, table.row_count());
        let n = rng.gen_range(2..5usize);
        let predicate = Predicate::And(
            (0..n).map(|_| random_predicate(&mut rng, 1)).collect(),
        );
        check_weighted_equivalence(&table, &predicate, &probabilities);
    }
}

#[test]
fn empty_and_tiny_tables_stream_weighted_correctly() {
    let mut rng = StdRng::seed_from_u64(23);
    for max_rows in [1usize, 2, 4] {
        let table = random_table(&mut rng, max_rows);
        let probabilities = random_probabilities(&mut rng, table.row_count());
        for _ in 0..20 {
            let predicate = random_predicate(&mut rng, 2);
            check_weighted_equivalence(&table, &predicate, &probabilities);
        }
    }
}
