//! Property-based equivalence suite: the vectorized pipeline
//! (`CompiledPredicate` + scan kernels + fused moment sketches) must produce
//! results identical to the scalar oracle (`Predicate::evaluate` +
//! `compute_aggregate`) across all column types, NULL patterns, operators
//! and predicate shapes.
//!
//! Selections are compared for exact equality; aggregates are compared
//! bit-for-bit (`f64::to_bits`), which holds because both paths share the
//! same `MomentSketch` fold in the same row order. Error cases must error on
//! both paths (payloads may name different bounds for multi-bound ranges,
//! so only the error-ness is asserted).
//!
//! Two deliberate, documented divergences are excluded by the generator:
//! unknown column names (the compiled path resolves names eagerly at
//! compile time, the oracle lazily at evaluation) and NaN *data* cells
//! (candidate refinement may legitimately skip a poisoned row the oracle's
//! full scan would reject). NaN *constants* are generated and must agree.
//!
//! Beyond the uniform random tables, a dedicated adversarial generator
//! targets the chunked bitmask evaluator: table lengths straddling
//! multiples of 64 (the tail-mask edge), validity bitmaps at 0% / 100% /
//! clustered NULL density (all-ones, all-zeros and block-patterned words),
//! and dictionary-encoded string columns — each checked through both the
//! serial and the sharded partitioned entry points.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sciborq_columnar::{
    compute_aggregate, AggregateKind, CompareOp, CompiledPredicate, DataType, Field, Partitioning,
    Predicate, Schema, Table, Value,
};

const COLUMNS: [&str; 5] = ["id", "ra", "mag", "class", "flag"];
const CLASSES: [&str; 4] = ["GALAXY", "STAR", "QSO", ""];

fn random_table(rng: &mut StdRng) -> Table {
    let schema = Schema::shared(vec![
        Field::nullable("id", DataType::Int64),
        Field::nullable("ra", DataType::Float64),
        Field::nullable("mag", DataType::Float64),
        Field::nullable("class", DataType::Utf8),
        Field::nullable("flag", DataType::Bool),
    ])
    .unwrap();
    let rows = rng.gen_range(0..40usize);
    let mut t = Table::new("t", schema);
    for _ in 0..rows {
        let id: Value = if rng.gen_bool(0.2) {
            Value::Null
        } else if rng.gen_bool(0.1) {
            // extreme integers exercise the exact (non-widening) i64 kernels
            if rng.gen_bool(0.5) {
                Value::Int64(i64::MAX)
            } else {
                Value::Int64(i64::MIN)
            }
        } else {
            Value::Int64(rng.gen_range(-4i64..4))
        };
        let ra: Value = if rng.gen_bool(0.2) {
            Value::Null
        } else {
            Value::Float64(rng.gen_range(-5.0f64..5.0))
        };
        let mag: Value = if rng.gen_bool(0.25) {
            Value::Null
        } else if rng.gen_bool(0.05) {
            Value::Float64(f64::INFINITY)
        } else {
            Value::Float64(rng.gen_range(-3.0f64..3.0))
        };
        let class: Value = if rng.gen_bool(0.2) {
            Value::Null
        } else {
            Value::Utf8(CLASSES[rng.gen_range(0..CLASSES.len())].to_owned())
        };
        let flag: Value = if rng.gen_bool(0.2) {
            Value::Null
        } else {
            Value::Bool(rng.gen_bool(0.5))
        };
        t.append_row(&[id, ra, mag, class, flag]).unwrap();
    }
    t
}

/// A literal of an arbitrary type (frequently, but not always, matching the
/// column it will be compared against, so type-mismatch paths are covered).
fn random_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..12u32) {
        0 => Value::Null,
        1 => Value::Int64(rng.gen_range(-4i64..4)),
        2 => Value::Int64(i64::MAX),
        3 => Value::Int64(i64::MIN),
        4 | 5 => Value::Float64(rng.gen_range(-5.0f64..5.0)),
        6 => Value::Float64(f64::NAN),
        7 => Value::Float64(f64::NEG_INFINITY),
        8 => Value::Bool(rng.gen_bool(0.5)),
        _ => Value::Utf8(CLASSES[rng.gen_range(0..CLASSES.len())].to_owned()),
    }
}

fn random_op(rng: &mut StdRng) -> CompareOp {
    match rng.gen_range(0..6u32) {
        0 => CompareOp::Eq,
        1 => CompareOp::NotEq,
        2 => CompareOp::Lt,
        3 => CompareOp::LtEq,
        4 => CompareOp::Gt,
        _ => CompareOp::GtEq,
    }
}

fn random_column(rng: &mut StdRng) -> String {
    COLUMNS[rng.gen_range(0..COLUMNS.len())].to_owned()
}

fn random_predicate(rng: &mut StdRng, depth: u32) -> Predicate {
    let variants: u32 = if depth == 0 { 6 } else { 9 };
    match rng.gen_range(0..variants) {
        0 => Predicate::Compare {
            column: random_column(rng),
            op: random_op(rng),
            value: random_value(rng),
        },
        1 => Predicate::Between {
            column: random_column(rng),
            low: random_value(rng),
            high: random_value(rng),
        },
        2 => Predicate::IsNull(random_column(rng)),
        3 => Predicate::IsNotNull(random_column(rng)),
        4 => Predicate::True,
        5 => Predicate::False,
        6 => Predicate::And(
            (0..rng.gen_range(1..4usize))
                .map(|_| random_predicate(rng, depth - 1))
                .collect(),
        ),
        7 => Predicate::Or(
            (0..rng.gen_range(1..4usize))
                .map(|_| random_predicate(rng, depth - 1))
                .collect(),
        ),
        _ => Predicate::Not(Box::new(random_predicate(rng, depth - 1))),
    }
}

/// Core check: compiled selection == oracle selection, and when the
/// selection exists, fused count and fused aggregates are bit-identical to
/// the scalar aggregates for every aggregate kind.
fn check_equivalence(table: &Table, predicate: &Predicate) {
    let compiled =
        CompiledPredicate::compile(predicate, table.schema()).expect("all generated columns exist");
    let oracle = predicate.evaluate(table);
    let fast = compiled.evaluate(table);
    match (&oracle, &fast) {
        (Ok(expected), Ok(actual)) => {
            assert_eq!(
                expected,
                actual,
                "selection mismatch for {predicate} on {} rows",
                table.row_count()
            );
        }
        (Err(_), Err(_)) => return,
        (o, f) => panic!("error divergence for {predicate}: oracle {o:?} vs compiled {f:?}"),
    }
    let selection = oracle.expect("checked Ok above");

    let (count, _) = compiled
        .count_matches(table)
        .expect("count succeeds when selection did");
    assert_eq!(count, selection.len(), "fused count for {predicate}");

    for agg_column in ["id", "mag"] {
        let (sketch, _) = compiled
            .filter_moments(table, agg_column)
            .expect("numeric aggregate column");
        for kind in [
            AggregateKind::Count,
            AggregateKind::Sum,
            AggregateKind::Avg,
            AggregateKind::Min,
            AggregateKind::Max,
            AggregateKind::Variance,
        ] {
            let column = (kind != AggregateKind::Count).then_some(agg_column);
            let exact = compute_aggregate(table, column, kind, &selection)
                .expect("numeric aggregate")
                .value;
            let fused = sketch.aggregate(kind);
            let bits = |v: Option<f64>| v.map(f64::to_bits);
            assert_eq!(
                bits(exact),
                bits(fused),
                "aggregate {kind}({agg_column}) for {predicate}: exact {exact:?} vs fused {fused:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Random tables × random deep predicates: selections and all fused
    /// aggregates must match the scalar oracle exactly.
    #[test]
    fn compiled_pipeline_matches_scalar_oracle(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let table = random_table(&mut rng);
        let predicate = random_predicate(&mut rng, 3);
        check_equivalence(&table, &predicate);
    }

    /// Focused on single-column leaves at higher volume: every operator ×
    /// every column type × NULL literals.
    #[test]
    fn leaf_predicates_match_oracle(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let table = random_table(&mut rng);
        for _ in 0..8 {
            let predicate = random_predicate(&mut rng, 0);
            check_equivalence(&table, &predicate);
        }
    }

    /// BETWEEN across all column types and bound type combinations,
    /// including NULL and NaN bounds: the one-pass kernels must agree with
    /// the (also single-pass) scalar range.
    #[test]
    fn between_matches_oracle(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbe73);
        let table = random_table(&mut rng);
        for _ in 0..8 {
            let predicate = Predicate::Between {
                column: random_column(&mut rng),
                low: random_value(&mut rng),
                high: random_value(&mut rng),
            };
            check_equivalence(&table, &predicate);
        }
    }

    /// Conjunctions exercise candidate-list refinement; the refined scans
    /// must select exactly the intersection the oracle computes.
    #[test]
    fn conjunctions_match_oracle(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa2d);
        let table = random_table(&mut rng);
        let n = rng.gen_range(2..5usize);
        let predicate = Predicate::And(
            (0..n).map(|_| random_predicate(&mut rng, 1)).collect(),
        );
        check_equivalence(&table, &predicate);
    }
}

/// NULL-density regimes for adversarial validity bitmaps. The chunked
/// kernels AND 64-bit validity words into candidate masks, so all-ones
/// words (no NULLs anywhere), all-zeros words (every row NULL) and
/// block-patterned words (clustered NULL runs) each exercise a different
/// wordwise path — including the `valid_cand == 0` short-circuit.
#[derive(Clone, Copy, Debug)]
enum NullRegime {
    /// 0% NULLs: every validity word is all-ones.
    Dense,
    /// 100% NULLs: every validity word is all-zeros.
    AllNull,
    /// Alternating blocks of NULL / non-NULL rows; block sizes below,
    /// at and above the 64-row word width.
    Clustered(usize),
    /// Independent per-cell NULLs (the classic regime, kept in the mix so
    /// the adversarial suite is a superset of the uniform one).
    Scattered,
}

impl NullRegime {
    fn pick(rng: &mut StdRng) -> Self {
        match rng.gen_range(0..4u32) {
            0 => NullRegime::Dense,
            1 => NullRegime::AllNull,
            2 => NullRegime::Clustered([8usize, 16, 64][rng.gen_range(0..3usize)]),
            _ => NullRegime::Scattered,
        }
    }

    fn is_null(self, rng: &mut StdRng, row: usize) -> bool {
        match self {
            NullRegime::Dense => false,
            NullRegime::AllNull => true,
            NullRegime::Clustered(block) => (row / block).is_multiple_of(2),
            NullRegime::Scattered => rng.gen_bool(0.2),
        }
    }
}

/// Table lengths concentrated on word-boundary edge cases: the chunked
/// evaluator's tail-mask logic changes at multiples of 64, so lengths one
/// below / at / one above each boundary are drawn most often.
fn boundary_rows(rng: &mut StdRng) -> usize {
    const EDGES: [usize; 11] = [0, 1, 63, 64, 65, 127, 128, 129, 191, 192, 193];
    if rng.gen_bool(0.7) {
        EDGES[rng.gen_range(0..EDGES.len())]
    } else {
        rng.gen_range(0..200)
    }
}

/// Same schema and value distributions as [`random_table`], but with the
/// row count and the NULL pattern dictated by the caller.
fn adversarial_table(rng: &mut StdRng, rows: usize, regime: NullRegime) -> Table {
    let schema = Schema::shared(vec![
        Field::nullable("id", DataType::Int64),
        Field::nullable("ra", DataType::Float64),
        Field::nullable("mag", DataType::Float64),
        Field::nullable("class", DataType::Utf8),
        Field::nullable("flag", DataType::Bool),
    ])
    .unwrap();
    let mut t = Table::new("t", schema);
    for row in 0..rows {
        let id: Value = if regime.is_null(rng, row) {
            Value::Null
        } else if rng.gen_bool(0.1) {
            Value::Int64(if rng.gen_bool(0.5) {
                i64::MAX
            } else {
                i64::MIN
            })
        } else {
            Value::Int64(rng.gen_range(-4i64..4))
        };
        let ra: Value = if regime.is_null(rng, row) {
            Value::Null
        } else {
            Value::Float64(rng.gen_range(-5.0f64..5.0))
        };
        let mag: Value = if regime.is_null(rng, row) {
            Value::Null
        } else if rng.gen_bool(0.05) {
            Value::Float64(f64::INFINITY)
        } else {
            Value::Float64(rng.gen_range(-3.0f64..3.0))
        };
        let class: Value = if regime.is_null(rng, row) {
            Value::Null
        } else {
            Value::Utf8(CLASSES[rng.gen_range(0..CLASSES.len())].to_owned())
        };
        let flag: Value = if regime.is_null(rng, row) {
            Value::Null
        } else {
            Value::Bool(rng.gen_bool(0.5))
        };
        t.append_row(&[id, ra, mag, class, flag]).unwrap();
    }
    t
}

/// The sharded partitioned entry points must agree with their serial
/// counterparts: identical selection, identical count, bit-identical fused
/// moments, and matching error-ness.
fn check_partitioned_matches_serial(table: &Table, predicate: &Predicate, shards: usize) {
    let compiled =
        CompiledPredicate::compile(predicate, table.schema()).expect("all generated columns exist");
    let parts = Partitioning::even(table.row_count(), shards);
    match (
        compiled.evaluate(table),
        compiled.evaluate_partitioned(table, &parts),
    ) {
        (Ok(expected), Ok((actual, _))) => {
            assert_eq!(expected, actual, "partitioned selection for {predicate}");
            let (count, _) = compiled
                .count_matches_partitioned(table, &parts)
                .expect("count succeeds when selection did");
            assert_eq!(count, expected.len(), "partitioned count for {predicate}");
            let (serial, _) = compiled
                .filter_moments(table, "mag")
                .expect("numeric aggregate column");
            let (sharded, _) = compiled
                .filter_moments_partitioned(table, "mag", &parts)
                .expect("numeric aggregate column");
            for kind in [
                AggregateKind::Count,
                AggregateKind::Sum,
                AggregateKind::Avg,
                AggregateKind::Min,
                AggregateKind::Max,
                AggregateKind::Variance,
            ] {
                let bits = |v: Option<f64>| v.map(f64::to_bits);
                assert_eq!(
                    bits(serial.aggregate(kind)),
                    bits(sharded.aggregate(kind)),
                    "partitioned moment {kind} for {predicate}"
                );
            }
        }
        (Err(_), Err(_)) => {}
        (s, p) => panic!("partitioned error divergence for {predicate}: serial {s:?} vs {p:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Adversarial validity × word-boundary lengths, through every
    /// execution tier: the scalar oracle, the serial chunked evaluator,
    /// the retained rowwise tier and the sharded partitioned path — first
    /// on plain string columns, then with dictionary encoding forced.
    #[test]
    fn adversarial_validity_and_lengths_match_oracle(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xad7e);
        let regime = NullRegime::pick(&mut rng);
        let rows = boundary_rows(&mut rng);
        let mut table = adversarial_table(&mut rng, rows, regime);
        let predicate = random_predicate(&mut rng, 2);
        let shards = rng.gen_range(1..5usize);

        check_equivalence(&table, &predicate);
        check_partitioned_matches_serial(&table, &predicate, shards);
        let plain = CompiledPredicate::compile(&predicate, table.schema())
            .expect("all generated columns exist")
            .evaluate(&table);

        // Force dictionary encoding (no cardinality cap): the integer-code
        // kernels must reproduce the plain string kernels exactly.
        table.dict_encode_strings(usize::MAX);
        check_equivalence(&table, &predicate);
        check_partitioned_matches_serial(&table, &predicate, shards);
        let dict = CompiledPredicate::compile(&predicate, table.schema())
            .expect("all generated columns exist")
            .evaluate(&table);
        match (&plain, &dict) {
            (Ok(p), Ok(d)) => assert_eq!(p, d, "dict selection mismatch for {predicate}"),
            (Err(_), Err(_)) => {}
            (p, d) => panic!("dict error divergence for {predicate}: plain {p:?} vs dict {d:?}"),
        }
    }

    /// The retained rowwise tier (the PR 2 kernels, kept as the benchmark
    /// baseline) must stay bit-identical to the chunked default on the
    /// same adversarial tables.
    #[test]
    fn rowwise_tier_matches_chunked(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x70_77);
        let regime = NullRegime::pick(&mut rng);
        let rows = boundary_rows(&mut rng);
        let mut table = adversarial_table(&mut rng, rows, regime);
        if rng.gen_bool(0.5) {
            table.dict_encode_strings(usize::MAX);
        }
        let predicate = random_predicate(&mut rng, 2);
        let compiled = CompiledPredicate::compile(&predicate, table.schema())
            .expect("all generated columns exist");
        match (compiled.evaluate(&table), compiled.evaluate_rowwise(&table)) {
            (Ok(chunked), Ok((rowwise, _))) => {
                assert_eq!(chunked, rowwise, "rowwise selection for {predicate}");
                let (chunked_count, _) = compiled.count_matches(&table).expect("count");
                let (rowwise_count, _) = compiled.count_matches_rowwise(&table).expect("count");
                assert_eq!(chunked_count, rowwise_count, "rowwise count for {predicate}");
            }
            (Err(_), Err(_)) => {}
            (c, r) => panic!("rowwise error divergence for {predicate}: chunked {c:?} vs {r:?}"),
        }
    }
}

#[test]
fn empty_table_equivalence() {
    let mut rng = StdRng::seed_from_u64(7);
    let schema = Schema::shared(vec![
        Field::nullable("id", DataType::Int64),
        Field::nullable("ra", DataType::Float64),
        Field::nullable("mag", DataType::Float64),
        Field::nullable("class", DataType::Utf8),
        Field::nullable("flag", DataType::Bool),
    ])
    .unwrap();
    let table = Table::new("t", schema);
    for _ in 0..50 {
        let predicate = random_predicate(&mut rng, 2);
        check_equivalence(&table, &predicate);
    }
}
