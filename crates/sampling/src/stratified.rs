//! Stratified per-bin sampling baseline.
//!
//! The paper contrasts impressions with classical synopsis techniques. A
//! natural competitor to KDE-biased sampling is *stratified* sampling: divide
//! the attribute domain into strata (the same equi-width bins SciBORQ already
//! maintains) and run an independent uniform reservoir per stratum, splitting
//! the capacity either evenly or proportionally to the observed workload
//! interest. The experiment harness uses this module as an additional
//! baseline for the Figure 7 comparison.

use crate::error::{Result, SamplingError};
use crate::reservoir::Reservoir;
use crate::traits::{SampledItem, SamplingStrategy};

/// How the total capacity is divided among strata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StratumAllocation {
    /// Every stratum receives the same share of the capacity.
    Equal,
    /// Capacity is divided proportionally to externally supplied stratum
    /// weights (e.g. workload interest per bin).
    Proportional,
}

/// A stratified sampler: one uniform reservoir per stratum of an attribute's
/// domain.
#[derive(Debug, Clone)]
pub struct StratifiedSampler<T> {
    strata: Vec<Reservoir<T>>,
    boundaries: Vec<f64>,
    min: f64,
    max: f64,
    observed: u64,
    capacity: usize,
}

impl<T: Clone> StratifiedSampler<T> {
    /// Create a stratified sampler over `[min, max)` with `strata` strata.
    ///
    /// `capacity` is the *total* sample size; `weights` (same length as the
    /// number of strata) controls the allocation when
    /// [`StratumAllocation::Proportional`] is chosen.
    pub fn new(
        min: f64,
        max: f64,
        strata: usize,
        capacity: usize,
        allocation: StratumAllocation,
        weights: Option<&[f64]>,
        seed: u64,
    ) -> Result<Self> {
        if strata == 0 {
            return Err(SamplingError::InvalidParameter {
                name: "strata",
                message: "must be positive".into(),
            });
        }
        if capacity < strata {
            return Err(SamplingError::InvalidParameter {
                name: "capacity",
                message: format!("must be at least the number of strata ({strata})"),
            });
        }
        if !(max > min) {
            return Err(SamplingError::InvalidParameter {
                name: "max",
                message: "domain max must exceed min".into(),
            });
        }
        let per_stratum: Vec<usize> = match allocation {
            StratumAllocation::Equal => {
                let base = capacity / strata;
                let mut sizes = vec![base; strata];
                for size in sizes.iter_mut().take(capacity % strata) {
                    *size += 1;
                }
                sizes
            }
            StratumAllocation::Proportional => {
                let weights = weights.ok_or(SamplingError::InvalidParameter {
                    name: "weights",
                    message: "required for proportional allocation".into(),
                })?;
                if weights.len() != strata {
                    return Err(SamplingError::InvalidParameter {
                        name: "weights",
                        message: format!("expected {strata} weights, found {}", weights.len()),
                    });
                }
                if weights.iter().any(|w| !(*w >= 0.0) || !w.is_finite()) {
                    return Err(SamplingError::InvalidWeight(
                        *weights
                            .iter()
                            .find(|w| !(**w >= 0.0) || !w.is_finite())
                            .expect("checked above"),
                    ));
                }
                let total: f64 = weights.iter().sum();
                if total <= 0.0 {
                    return Err(SamplingError::InvalidParameter {
                        name: "weights",
                        message: "must not all be zero".into(),
                    });
                }
                // every stratum gets at least one slot; the rest proportionally
                let spare = capacity - strata;
                let mut sizes: Vec<usize> = weights
                    .iter()
                    .map(|w| 1 + (spare as f64 * w / total).floor() as usize)
                    .collect();
                // distribute rounding leftovers to the heaviest strata
                let mut assigned: usize = sizes.iter().sum();
                let mut order: Vec<usize> = (0..strata).collect();
                order.sort_by(|&a, &b| weights[b].partial_cmp(&weights[a]).expect("finite"));
                let mut i = 0;
                while assigned < capacity {
                    sizes[order[i % strata]] += 1;
                    assigned += 1;
                    i += 1;
                }
                sizes
            }
        };
        let width = (max - min) / strata as f64;
        let boundaries = (0..=strata).map(|i| min + i as f64 * width).collect();
        let strata_reservoirs = per_stratum
            .iter()
            .enumerate()
            .map(|(i, &cap)| Reservoir::new(cap.max(1), seed.wrapping_add(i as u64)))
            .collect();
        Ok(StratifiedSampler {
            strata: strata_reservoirs,
            boundaries,
            min,
            max,
            observed: 0,
            capacity,
        })
    }

    /// The stratum index a value falls into (clamped at the boundaries).
    pub fn stratum_of(&self, value: f64) -> usize {
        if value <= self.min {
            return 0;
        }
        if value >= self.max {
            return self.strata.len() - 1;
        }
        let width = (self.max - self.min) / self.strata.len() as f64;
        (((value - self.min) / width).floor() as usize).min(self.strata.len() - 1)
    }

    /// Observe an item keyed by the stratification attribute's value.
    pub fn observe_value(&mut self, item: T, value: f64) {
        self.observed += 1;
        let idx = self.stratum_of(value);
        self.strata[idx].observe(item);
    }

    /// Per-stratum retained counts.
    pub fn stratum_sizes(&self) -> Vec<usize> {
        self.strata.iter().map(|r| r.len()).collect()
    }

    /// Per-stratum capacities.
    pub fn stratum_capacities(&self) -> Vec<usize> {
        self.strata.iter().map(|r| r.capacity()).collect()
    }

    /// The stratum boundaries (length = strata + 1).
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// A snapshot of every retained item across all strata.
    pub fn sample_vec(&self) -> Vec<SampledItem<T>> {
        self.strata
            .iter()
            .flat_map(|r| r.sample().iter().cloned())
            .collect()
    }

    /// Total number of retained items.
    pub fn retained(&self) -> usize {
        self.strata.iter().map(|r| r.len()).sum()
    }

    /// Total number of observed items.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Total configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_validation() {
        assert!(
            StratifiedSampler::<u64>::new(0.0, 1.0, 0, 10, StratumAllocation::Equal, None, 1)
                .is_err()
        );
        assert!(
            StratifiedSampler::<u64>::new(0.0, 1.0, 5, 3, StratumAllocation::Equal, None, 1)
                .is_err()
        );
        assert!(
            StratifiedSampler::<u64>::new(1.0, 1.0, 5, 10, StratumAllocation::Equal, None, 1)
                .is_err()
        );
        assert!(StratifiedSampler::<u64>::new(
            0.0,
            1.0,
            5,
            10,
            StratumAllocation::Proportional,
            None,
            1
        )
        .is_err());
        assert!(StratifiedSampler::<u64>::new(
            0.0,
            1.0,
            2,
            10,
            StratumAllocation::Proportional,
            Some(&[1.0]),
            1
        )
        .is_err());
        assert!(StratifiedSampler::<u64>::new(
            0.0,
            1.0,
            2,
            10,
            StratumAllocation::Proportional,
            Some(&[1.0, f64::NAN]),
            1
        )
        .is_err());
        assert!(StratifiedSampler::<u64>::new(
            0.0,
            1.0,
            2,
            10,
            StratumAllocation::Proportional,
            Some(&[0.0, 0.0]),
            1
        )
        .is_err());
    }

    #[test]
    fn equal_allocation_splits_capacity() {
        let s = StratifiedSampler::<u64>::new(0.0, 10.0, 4, 10, StratumAllocation::Equal, None, 1)
            .unwrap();
        let caps = s.stratum_capacities();
        assert_eq!(caps.iter().sum::<usize>(), 10);
        assert_eq!(caps, vec![3, 3, 2, 2]);
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.boundaries().len(), 5);
    }

    #[test]
    fn proportional_allocation_follows_weights() {
        let s = StratifiedSampler::<u64>::new(
            0.0,
            10.0,
            4,
            100,
            StratumAllocation::Proportional,
            Some(&[8.0, 1.0, 1.0, 0.0]),
            1,
        )
        .unwrap();
        let caps = s.stratum_capacities();
        assert_eq!(caps.iter().sum::<usize>(), 100);
        assert!(caps[0] > caps[1]);
        assert!(caps[3] >= 1, "every stratum keeps at least one slot");
    }

    #[test]
    fn stratum_of_maps_values() {
        let s = StratifiedSampler::<u64>::new(0.0, 10.0, 5, 10, StratumAllocation::Equal, None, 1)
            .unwrap();
        assert_eq!(s.stratum_of(-1.0), 0);
        assert_eq!(s.stratum_of(0.0), 0);
        assert_eq!(s.stratum_of(3.9), 1);
        assert_eq!(s.stratum_of(9.99), 4);
        assert_eq!(s.stratum_of(10.0), 4);
        assert_eq!(s.stratum_of(99.0), 4);
    }

    #[test]
    fn observe_routes_to_correct_stratum() {
        let mut s =
            StratifiedSampler::new(0.0, 10.0, 2, 20, StratumAllocation::Equal, None, 7).unwrap();
        for i in 0..100u64 {
            let value = if i % 4 == 0 { 2.0 } else { 8.0 };
            s.observe_value(i, value);
        }
        assert_eq!(s.observed(), 100);
        let sizes = s.stratum_sizes();
        assert_eq!(sizes.len(), 2);
        // both strata saw data and filled up to their capacity
        assert_eq!(sizes[0], 10);
        assert_eq!(sizes[1], 10);
        assert_eq!(s.retained(), 20);
        assert_eq!(s.sample_vec().len(), 20);
    }

    #[test]
    fn stratification_guarantees_coverage_of_sparse_regions() {
        // 1% of the data lies in [9,10); uniform sampling of 20 items could
        // easily miss it, but the stratified sampler reserves slots for it.
        let mut s =
            StratifiedSampler::new(0.0, 10.0, 10, 20, StratumAllocation::Equal, None, 3).unwrap();
        for i in 0..10_000u64 {
            let value = if i % 100 == 0 { 9.5 } else { (i % 9) as f64 };
            s.observe_value(i, value);
        }
        let sizes = s.stratum_sizes();
        assert!(sizes[9] >= 1, "sparse stratum must be represented");
    }
}
