//! Error types for the sampling crate.

use std::fmt;

/// Errors produced when configuring or running sampling strategies.
#[derive(Debug, Clone, PartialEq)]
pub enum SamplingError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// The parameter name.
        name: &'static str,
        /// Explanation of the violated constraint.
        message: String,
    },
    /// A weight supplied to a weighted strategy was invalid (negative, NaN…).
    InvalidWeight(f64),
}

impl fmt::Display for SamplingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplingError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter {name}: {message}")
            }
            SamplingError::InvalidWeight(w) => write!(f, "invalid sampling weight: {w}"),
        }
    }
}

impl std::error::Error for SamplingError {}

/// Result alias for the sampling crate.
pub type Result<T> = std::result::Result<T, SamplingError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SamplingError::InvalidParameter {
            name: "k",
            message: "too large".into(),
        };
        assert!(e.to_string().contains("k"));
        assert!(SamplingError::InvalidWeight(-1.0)
            .to_string()
            .contains("-1"));
    }

    #[test]
    fn is_std_error() {
        fn check<E: std::error::Error>(_: &E) {}
        check(&SamplingError::InvalidWeight(f64::NAN));
    }
}
