//! The Last-Seen impression construction algorithm (paper Figure 3).
//!
//! Scientific observations have a strong temporal component: recent tuples
//! are often more interesting than ones already analysed. Instead of the
//! decaying acceptance probability `n/cnt` of Algorithm R, the Last-Seen
//! strategy accepts every tuple with the *fixed* probability `k/D`, where `D`
//! is tuned to the expected daily ingest and `k ≤ n` controls what fraction
//! of the reservoir should consist of fresh tuples. Accepted tuples overwrite
//! a uniformly random slot, so older tuples are evicted at a constant rate
//! and the sample stays biased towards the most recent data.

use crate::error::{Result, SamplingError};
use crate::traits::{SampledItem, SamplingStrategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Last-Seen reservoir of Figure 3.
#[derive(Debug, Clone)]
pub struct LastSeenReservoir<T> {
    sample: Vec<SampledItem<T>>,
    capacity: usize,
    /// Number of "new tuple" slots targeted per ingest window (`k`).
    k: f64,
    /// Expected ingest volume per window (`D`).
    d: f64,
    observed: u64,
    accepted: u64,
    rng: StdRng,
}

impl<T> LastSeenReservoir<T> {
    /// Create a Last-Seen reservoir.
    ///
    /// * `capacity` — reservoir size `n`.
    /// * `k` — number of new tuples desired per window; `k = n` keeps only
    ///   fresh data, `k < n` keeps a `k/n` ratio of fresh tuples.
    /// * `daily_ingest` — the tuning constant `D`, close to the expected
    ///   number of tuples per incremental load.
    pub fn new(capacity: usize, k: f64, daily_ingest: f64, seed: u64) -> Result<Self> {
        if capacity == 0 {
            return Err(SamplingError::InvalidParameter {
                name: "capacity",
                message: "must be positive".into(),
            });
        }
        if !(k > 0.0) || k > capacity as f64 {
            return Err(SamplingError::InvalidParameter {
                name: "k",
                message: format!("must lie in (0, capacity={capacity}]"),
            });
        }
        if !(daily_ingest > 0.0) {
            return Err(SamplingError::InvalidParameter {
                name: "daily_ingest",
                message: "must be positive".into(),
            });
        }
        Ok(LastSeenReservoir {
            sample: Vec::with_capacity(capacity),
            capacity,
            k,
            d: daily_ingest,
            observed: 0,
            accepted: 0,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// The fixed acceptance probability `k/D` (clamped to 1).
    pub fn acceptance_probability(&self) -> f64 {
        (self.k / self.d).min(1.0)
    }

    /// Number of tuples that were accepted into the reservoir so far
    /// (including ones later overwritten).
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// The configured `k` parameter.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// The configured `D` parameter.
    pub fn daily_ingest(&self) -> f64 {
        self.d
    }

    /// Consume the reservoir, returning the retained items.
    pub fn into_sample(self) -> Vec<SampledItem<T>> {
        self.sample
    }
}

impl<T> SamplingStrategy<T> for LastSeenReservoir<T> {
    fn observe_weighted(&mut self, item: T, weight: f64) {
        self.observed += 1;
        if self.sample.len() < self.capacity {
            self.sample.push(SampledItem::new(item, weight));
            self.accepted += 1;
            return;
        }
        // rnd := random(); if (D*rnd) < k: smp[floor(n*rnd)] := tpl
        let rnd: f64 = self.rng.gen();
        if self.d * rnd < self.k {
            // floor(n*rnd) indexes the reservoir uniformly because rnd < k/D ≤ 1
            // is rescaled over the full capacity range.
            let slot = ((self.capacity as f64 * rnd / (self.k / self.d).min(1.0)) as usize)
                .min(self.capacity - 1);
            self.sample[slot] = SampledItem::new(item, weight);
            self.accepted += 1;
        }
    }

    fn sample(&self) -> &[SampledItem<T>] {
        &self.sample
    }

    fn observed(&self) -> u64 {
        self.observed
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn name(&self) -> &'static str {
        "last-seen"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parameter_validation() {
        assert!(LastSeenReservoir::<u64>::new(0, 1.0, 10.0, 1).is_err());
        assert!(LastSeenReservoir::<u64>::new(10, 0.0, 10.0, 1).is_err());
        assert!(LastSeenReservoir::<u64>::new(10, 11.0, 10.0, 1).is_err());
        assert!(LastSeenReservoir::<u64>::new(10, 5.0, 0.0, 1).is_err());
        assert!(LastSeenReservoir::<u64>::new(10, 5.0, 100.0, 1).is_ok());
    }

    #[test]
    fn acceptance_probability_is_k_over_d() {
        let r = LastSeenReservoir::<u64>::new(100, 50.0, 1000.0, 1).unwrap();
        assert!((r.acceptance_probability() - 0.05).abs() < 1e-12);
        assert_eq!(r.k(), 50.0);
        assert_eq!(r.daily_ingest(), 1000.0);
        // clamped when k > D
        let r = LastSeenReservoir::<u64>::new(100, 100.0, 50.0, 1).unwrap();
        assert_eq!(r.acceptance_probability(), 1.0);
    }

    #[test]
    fn size_never_exceeds_capacity() {
        let mut r = LastSeenReservoir::new(64, 32.0, 1000.0, 5).unwrap();
        for i in 0..50_000u64 {
            r.observe(i);
        }
        assert_eq!(r.len(), 64);
        assert_eq!(r.observed(), 50_000);
        assert_eq!(r.name(), "last-seen");
    }

    #[test]
    fn recency_bias_favours_recent_tuples() {
        // Stream 100k tuples; with k/D = 1000/10_000 = 0.1 the expected age
        // of a surviving tuple is ~capacity/acceptance-rate; the bulk of the
        // reservoir should come from the most recent portion of the stream.
        let mut r = LastSeenReservoir::new(1000, 1000.0, 10_000.0, 11).unwrap();
        let total = 100_000u64;
        for i in 0..total {
            r.observe(i);
        }
        let recent_half = r.sample().iter().filter(|s| s.item >= total / 2).count();
        let fraction_recent = recent_half as f64 / r.len() as f64;
        assert!(
            fraction_recent > 0.9,
            "expected strong recency bias, got {fraction_recent}"
        );
    }

    #[test]
    fn uniform_reservoir_lacks_recency_bias_in_comparison() {
        // Contrast with Algorithm R over the same stream: recency fraction ~0.5.
        use crate::reservoir::Reservoir;
        let mut uniform = Reservoir::new(1000, 11);
        let mut last_seen = LastSeenReservoir::new(1000, 1000.0, 10_000.0, 11).unwrap();
        let total = 100_000u64;
        for i in 0..total {
            uniform.observe(i);
            last_seen.observe(i);
        }
        let frac = |items: &[SampledItem<u64>]| {
            items.iter().filter(|s| s.item >= total / 2).count() as f64 / items.len() as f64
        };
        let uniform_frac = frac(uniform.sample());
        let ls_frac = frac(last_seen.sample());
        assert!(
            uniform_frac < 0.6,
            "uniform recency fraction {uniform_frac}"
        );
        assert!(ls_frac > uniform_frac + 0.3);
    }

    #[test]
    fn smaller_k_keeps_more_old_tuples() {
        let total = 20_000u64;
        let frac_recent = |k: f64| {
            let mut r = LastSeenReservoir::new(1000, k, 2_000.0, 3).unwrap();
            for i in 0..total {
                r.observe(i);
            }
            r.sample()
                .iter()
                .filter(|s| s.item >= total - 2_000)
                .count() as f64
                / r.len() as f64
        };
        let aggressive = frac_recent(1000.0); // k = n
        let gentle = frac_recent(100.0); // k = n/10
        assert!(
            aggressive > gentle,
            "k=n fraction {aggressive} should exceed k=n/10 fraction {gentle}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed| {
            let mut r = LastSeenReservoir::new(50, 25.0, 500.0, seed).unwrap();
            for i in 0..10_000u64 {
                r.observe(i);
            }
            r.sample().iter().map(|s| s.item).collect::<Vec<_>>()
        };
        assert_eq!(run(4), run(4));
    }

    #[test]
    fn accepted_counter_and_into_sample() {
        let mut r = LastSeenReservoir::new(10, 5.0, 10.0, 9).unwrap();
        for i in 0..100u64 {
            r.observe(i);
        }
        assert!(r.accepted() >= 10);
        assert!(r.accepted() <= 100);
        let sample = r.into_sample();
        assert_eq!(sample.len(), 10);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn size_invariant(
            cap in 1usize..128,
            k_frac in 0.05f64..1.0,
            d in 10.0f64..10_000.0,
            stream in 0u64..3000,
            seed in 0u64..u64::MAX,
        ) {
            let k = (cap as f64 * k_frac).max(0.01);
            let mut r = LastSeenReservoir::new(cap, k, d, seed).unwrap();
            for i in 0..stream {
                r.observe(i);
            }
            prop_assert!(r.len() <= cap);
            prop_assert_eq!(r.len() as u64, stream.min(cap as u64));
        }
    }
}
