//! Weighted reservoir sampling baseline (Efraimidis–Spirakis A-Res).
//!
//! The paper's biased reservoir (Figure 6) is a heuristic tuned for streaming
//! loads. The A-Res algorithm is the textbook way to draw a weighted sample
//! without replacement from a stream: assign every item the key
//! `u^(1/w)` with `u ~ U(0,1)` and keep the `n` items with the largest keys.
//! SciBORQ's ablation benches compare the two, and the join-aware impression
//! construction (§3.3, citing Chaudhuri et al.) uses weighted sampling to
//! follow foreign-key join paths.

use crate::error::{Result, SamplingError};
use crate::traits::{SampledItem, SamplingStrategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A heap entry: the A-Res key plus the retained item.
#[derive(Debug, Clone)]
struct HeapEntry<T> {
    key: f64,
    item: SampledItem<T>,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the smallest
        // key on top so it can be evicted when a better item arrives.
        other.key.partial_cmp(&self.key).unwrap_or(Ordering::Equal)
    }
}

/// Weighted reservoir sampling without replacement (A-Res).
#[derive(Debug, Clone)]
pub struct WeightedReservoir<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    // cached flat view rebuilt lazily after mutations
    cache: Vec<SampledItem<T>>,
    cache_dirty: bool,
    capacity: usize,
    observed: u64,
    rng: StdRng,
}

impl<T: Clone> WeightedReservoir<T> {
    /// Create a weighted reservoir of the given capacity.
    pub fn new(capacity: usize, seed: u64) -> Result<Self> {
        if capacity == 0 {
            return Err(SamplingError::InvalidParameter {
                name: "capacity",
                message: "must be positive".into(),
            });
        }
        Ok(WeightedReservoir {
            heap: BinaryHeap::with_capacity(capacity + 1),
            cache: Vec::new(),
            cache_dirty: false,
            capacity,
            observed: 0,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    fn refresh_cache(&mut self) {
        if self.cache_dirty {
            self.cache = self.heap.iter().map(|e| e.item.clone()).collect();
            self.cache_dirty = false;
        }
    }

    /// Consume the reservoir, returning the retained items.
    pub fn into_sample(mut self) -> Vec<SampledItem<T>> {
        self.refresh_cache();
        self.cache
    }
}

impl<T: Clone> SamplingStrategy<T> for WeightedReservoir<T> {
    fn observe_weighted(&mut self, item: T, weight: f64) {
        self.observed += 1;
        if !(weight > 0.0) || !weight.is_finite() {
            // Zero / invalid weights can never be selected by A-Res.
            return;
        }
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let key = u.powf(1.0 / weight);
        let entry = HeapEntry {
            key,
            item: SampledItem::new(item, weight),
        };
        if self.heap.len() < self.capacity {
            self.heap.push(entry);
            self.cache_dirty = true;
        } else if let Some(min) = self.heap.peek() {
            if key > min.key {
                self.heap.pop();
                self.heap.push(entry);
                self.cache_dirty = true;
            }
        }
    }

    fn sample(&self) -> &[SampledItem<T>] {
        // The zero-copy view is only refreshed by `into_sample`/`sample_vec`;
        // callers that interleave reads with observations should use
        // `sample_vec`, which always reflects the heap.
        &self.cache
    }

    fn observed(&self) -> u64 {
        self.observed
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn name(&self) -> &'static str {
        "weighted-a-res"
    }
}

impl<T: Clone> WeightedReservoir<T> {
    /// A fresh snapshot of the retained items (always up to date, unlike the
    /// zero-copy [`SamplingStrategy::sample`] view which is only refreshed on
    /// construction boundaries).
    pub fn sample_vec(&self) -> Vec<SampledItem<T>> {
        self.heap.iter().map(|e| e.item.clone()).collect()
    }

    /// Number of retained items.
    pub fn retained(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parameter_validation() {
        assert!(WeightedReservoir::<u64>::new(0, 1).is_err());
        assert!(WeightedReservoir::<u64>::new(5, 1).is_ok());
    }

    #[test]
    fn retains_at_most_capacity() {
        let mut r = WeightedReservoir::new(10, 1).unwrap();
        for i in 0..1000u64 {
            r.observe_weighted(i, 1.0 + (i % 3) as f64);
        }
        assert_eq!(r.retained(), 10);
        assert_eq!(r.observed(), 1000);
        assert_eq!(r.sample_vec().len(), 10);
        assert_eq!(r.capacity(), 10);
        assert_eq!(r.name(), "weighted-a-res");
    }

    #[test]
    fn zero_and_invalid_weights_ignored() {
        let mut r = WeightedReservoir::new(5, 2).unwrap();
        r.observe_weighted(1u64, 0.0);
        r.observe_weighted(2u64, -1.0);
        r.observe_weighted(3u64, f64::NAN);
        assert_eq!(r.retained(), 0);
        r.observe_weighted(4u64, 2.0);
        assert_eq!(r.retained(), 1);
        assert_eq!(r.observed(), 4);
    }

    #[test]
    fn heavier_items_selected_more_often() {
        // 100 items; item 0..10 have weight 20, the rest weight 1.
        // Run many trials with a capacity of 10 and count how often heavy
        // items make it in.
        let trials = 200;
        let mut heavy_hits = 0usize;
        let mut light_hits = 0usize;
        for t in 0..trials {
            let mut r = WeightedReservoir::new(10, 5000 + t).unwrap();
            for i in 0..100u64 {
                let w = if i < 10 { 20.0 } else { 1.0 };
                r.observe_weighted(i, w);
            }
            for s in r.sample_vec() {
                if s.item < 10 {
                    heavy_hits += 1;
                } else {
                    light_hits += 1;
                }
            }
        }
        // heavy items are 10% of the population but should take well over
        // half of the sample slots given the 20x weight
        assert!(
            heavy_hits as f64 > light_hits as f64,
            "heavy {heavy_hits} vs light {light_hits}"
        );
    }

    #[test]
    fn uniform_weights_behave_like_uniform_sampling() {
        let trials = 300;
        let mut first_half = 0usize;
        let mut second_half = 0usize;
        for t in 0..trials {
            let mut r = WeightedReservoir::new(20, 900 + t).unwrap();
            for i in 0..200u64 {
                r.observe_weighted(i, 1.0);
            }
            for s in r.sample_vec() {
                if s.item < 100 {
                    first_half += 1;
                } else {
                    second_half += 1;
                }
            }
        }
        let ratio = first_half as f64 / second_half as f64;
        assert!(ratio > 0.85 && ratio < 1.15, "ratio = {ratio}");
    }

    #[test]
    fn into_sample_and_determinism() {
        let run = |seed| {
            let mut r = WeightedReservoir::new(8, seed).unwrap();
            for i in 0..500u64 {
                r.observe_weighted(i, 1.0 + (i % 7) as f64);
            }
            let mut v: Vec<u64> = r.into_sample().iter().map(|s| s.item).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(run(3), run(3));
        assert_eq!(run(3).len(), 8);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn size_invariant(cap in 1usize..64, stream in 0u64..1000, seed in 0u64..u64::MAX) {
            let mut r = WeightedReservoir::new(cap, seed).unwrap();
            for i in 0..stream {
                r.observe_weighted(i, 1.0);
            }
            prop_assert_eq!(r.retained() as u64, stream.min(cap as u64));
        }
    }
}
