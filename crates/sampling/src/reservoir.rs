//! The classical reservoir algorithm R (paper Figure 2).
//!
//! The sample is populated with the first `n` tuples; every later tuple
//! number `cnt` replaces a uniformly random slot with probability
//! `n / cnt`, which yields a uniform sample without replacement of every
//! prefix of the stream (Vitter 1985).

use crate::traits::{SampledItem, SamplingStrategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A uniform reservoir sampler of fixed capacity `n` (Algorithm R).
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    sample: Vec<SampledItem<T>>,
    capacity: usize,
    observed: u64,
    rng: StdRng,
}

impl<T> Reservoir<T> {
    /// Create a reservoir of the given capacity with a fixed RNG seed.
    ///
    /// # Panics
    /// Panics if `capacity` is zero — a zero-capacity impression is
    /// meaningless and always a configuration bug.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Reservoir {
            sample: Vec::with_capacity(capacity),
            capacity,
            observed: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Consume the reservoir, returning the retained items.
    pub fn into_sample(self) -> Vec<SampledItem<T>> {
        self.sample
    }

    /// The probability with which the *next* tuple would be accepted,
    /// `min(1, n / (cnt+1))`.
    pub fn next_acceptance_probability(&self) -> f64 {
        let cnt = self.observed + 1;
        (self.capacity as f64 / cnt as f64).min(1.0)
    }

    /// Observe one stream element, materialising it lazily: `make_item` runs
    /// only when the reservoir actually retains the element. Algorithm R's
    /// accept/evict decision depends solely on the stream position, so for
    /// expensive items (e.g. boxed table rows) this skips the construction
    /// cost of every rejected tuple — which, past the fill phase, is almost
    /// all of them.
    ///
    /// Draws exactly the same RNG sequence as
    /// [`SamplingStrategy::observe_weighted`]: feeding a stream through
    /// either entry point yields bit-identical reservoirs.
    pub fn observe_with(&mut self, weight: f64, make_item: impl FnOnce() -> T) {
        self.observed += 1;
        if self.sample.len() < self.capacity {
            self.sample.push(SampledItem::new(make_item(), weight));
            return;
        }
        let rnd = self.rng.gen_range(0..self.observed);
        if (rnd as usize) < self.capacity {
            self.sample[rnd as usize] = SampledItem::new(make_item(), weight);
        }
    }
}

impl<T> SamplingStrategy<T> for Reservoir<T> {
    fn observe_weighted(&mut self, item: T, weight: f64) {
        // delegate so the "same RNG sequence" contract with observe_with
        // holds by construction, not just by test
        self.observe_with(weight, || item);
    }

    fn sample(&self) -> &[SampledItem<T>] {
        &self.sample
    }

    fn observed(&self) -> u64 {
        self.observed
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn name(&self) -> &'static str {
        "uniform-reservoir"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Reservoir::<u64>::new(0, 1);
    }

    #[test]
    fn fills_up_to_capacity_first() {
        let mut r = Reservoir::new(5, 42);
        for i in 0..5u64 {
            r.observe(i);
        }
        assert_eq!(r.len(), 5);
        // the first n tuples are kept verbatim, in order
        let kept: Vec<u64> = r.sample().iter().map(|s| s.item).collect();
        assert_eq!(kept, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.observed(), 5);
        assert_eq!(r.capacity(), 5);
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut r = Reservoir::new(10, 7);
        for i in 0..10_000u64 {
            r.observe(i);
        }
        assert_eq!(r.len(), 10);
        assert_eq!(r.observed(), 10_000);
        assert!((r.sampling_fraction() - 0.001).abs() < 1e-9);
    }

    #[test]
    fn sample_items_are_unique_stream_elements() {
        let mut r = Reservoir::new(50, 3);
        for i in 0..1000u64 {
            r.observe(i);
        }
        let mut items: Vec<u64> = r.sample().iter().map(|s| s.item).collect();
        items.sort_unstable();
        items.dedup();
        assert_eq!(items.len(), 50, "reservoir must hold distinct stream items");
    }

    #[test]
    fn acceptance_probability_decays() {
        let mut r = Reservoir::new(10, 1);
        assert_eq!(r.next_acceptance_probability(), 1.0);
        for i in 0..100u64 {
            r.observe(i);
        }
        assert!((r.next_acceptance_probability() - 10.0 / 101.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed| {
            let mut r = Reservoir::new(20, seed);
            for i in 0..5000u64 {
                r.observe(i);
            }
            r.sample().iter().map(|s| s.item).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn uniformity_chi_square() {
        // Sample 100 out of 1000 repeatedly and check per-item inclusion
        // frequencies look uniform: each item should be included with
        // probability ~0.1.
        let trials = 400;
        let stream = 1000u64;
        let cap = 100usize;
        let mut inclusion = vec![0u32; stream as usize];
        for t in 0..trials {
            let mut r = Reservoir::new(cap, 1000 + t as u64);
            for i in 0..stream {
                r.observe(i);
            }
            for s in r.sample() {
                inclusion[s.item as usize] += 1;
            }
        }
        let expected = trials as f64 * cap as f64 / stream as f64; // 40
                                                                   // chi-square over 1000 cells, df ≈ 999; 3-sigma bound ≈ 999 + 3*sqrt(2*999) ≈ 1133
        let chi2: f64 = inclusion
            .iter()
            .map(|&o| {
                let d = o as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 1150.0, "chi2 = {chi2}");
        // and the first / last items are not systematically favoured
        let first_third: u32 = inclusion[..333].iter().sum();
        let last_third: u32 = inclusion[667..].iter().sum();
        let ratio = first_third as f64 / last_third as f64;
        assert!(ratio > 0.9 && ratio < 1.1, "ratio = {ratio}");
    }

    #[test]
    fn observe_with_is_bit_identical_to_observe_weighted() {
        let mut eager = Reservoir::new(20, 99);
        let mut lazy = Reservoir::new(20, 99);
        let mut built = 0u32;
        for i in 0..5_000u64 {
            eager.observe_weighted(i, 1.0);
            lazy.observe_with(1.0, || {
                built += 1;
                i
            });
        }
        let eager_items: Vec<u64> = eager.sample().iter().map(|s| s.item).collect();
        let lazy_items: Vec<u64> = lazy.sample().iter().map(|s| s.item).collect();
        assert_eq!(eager_items, lazy_items);
        assert_eq!(lazy.observed(), 5_000);
        // the closure ran only for retained tuples: the 20 fill-phase ones
        // plus every later accepted replacement — far fewer than the stream
        assert!(built >= 20);
        assert!(built < 500, "built {built} items for a 20-slot reservoir");
    }

    #[test]
    fn into_sample_returns_items() {
        let mut r = Reservoir::new(3, 2);
        for i in 0..10u64 {
            r.observe(i);
        }
        let items = r.into_sample();
        assert_eq!(items.len(), 3);
    }

    #[test]
    fn weights_are_carried_through() {
        let mut r = Reservoir::new(2, 5);
        r.observe_weighted(1u64, 3.5);
        r.observe_weighted(2u64, 4.5);
        assert_eq!(r.sample()[0].weight, 3.5);
        assert_eq!(r.sample()[1].weight, 4.5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn size_invariant(cap in 1usize..64, stream_len in 0u64..2000, seed in 0u64..u64::MAX) {
            let mut r = Reservoir::new(cap, seed);
            for i in 0..stream_len {
                r.observe(i);
            }
            prop_assert_eq!(r.len() as u64, stream_len.min(cap as u64));
            prop_assert_eq!(r.observed(), stream_len);
        }

        #[test]
        fn all_items_from_stream(cap in 1usize..32, stream_len in 1u64..500, seed in 0u64..u64::MAX) {
            let mut r = Reservoir::new(cap, seed);
            for i in 0..stream_len {
                r.observe(i * 3 + 1); // distinctive values
            }
            for s in r.sample() {
                prop_assert!(s.item >= 1 && s.item <= (stream_len - 1) * 3 + 1);
                prop_assert_eq!((s.item - 1) % 3, 0);
            }
        }
    }
}
