//! The sampling-strategy abstraction shared by all reservoir variants.
//!
//! Every SciBORQ impression is built by streaming the tuples of an
//! incremental load through a *sampler* with a fixed capacity, exactly like
//! the reservoir algorithms of Figures 2, 3 and 6 of the paper. The trait
//! below captures what the impression builder needs from such a sampler:
//! feed items (optionally with an interest weight), then read back the
//! retained items together with the relative probability with which each was
//! kept, so that the estimators can correct for the sampling design.

use serde::{Deserialize, Serialize};

/// An item retained in a sample, together with the information the
/// estimators need about how it got there.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampledItem<T> {
    /// The retained item (e.g. a row id of the layer below).
    pub item: T,
    /// The relative interest weight the item had when it was observed
    /// (1.0 for uniform strategies).
    pub weight: f64,
}

impl<T> SampledItem<T> {
    /// Convenience constructor.
    pub fn new(item: T, weight: f64) -> Self {
        SampledItem { item, weight }
    }
}

/// A bounded-capacity, single-pass sampling strategy.
///
/// Implementations must be deterministic given their seed so experiments are
/// reproducible.
pub trait SamplingStrategy<T> {
    /// Observe the next item of the stream with a neutral weight of 1.
    fn observe(&mut self, item: T) {
        self.observe_weighted(item, 1.0);
    }

    /// Observe the next item of the stream together with its interest
    /// weight (`f̆(t)·N` for the biased strategy; ignored by uniform ones).
    fn observe_weighted(&mut self, item: T, weight: f64);

    /// The items currently retained.
    fn sample(&self) -> &[SampledItem<T>];

    /// The number of items observed so far (`cnt` in the paper's listings).
    fn observed(&self) -> u64;

    /// The maximum number of items the sampler retains (`n`).
    fn capacity(&self) -> usize;

    /// The number of items currently retained (≤ capacity).
    fn len(&self) -> usize {
        self.sample().len()
    }

    /// True when nothing has been retained yet.
    fn is_empty(&self) -> bool {
        self.sample().is_empty()
    }

    /// The fraction of observed items currently retained; 1.0 until the
    /// reservoir first overflows.
    fn sampling_fraction(&self) -> f64 {
        if self.observed() == 0 {
            1.0
        } else {
            self.len() as f64 / self.observed() as f64
        }
    }

    /// A short, human-readable name for reports and benchmarks.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct KeepFirst {
        items: Vec<SampledItem<u64>>,
        capacity: usize,
        observed: u64,
    }

    impl SamplingStrategy<u64> for KeepFirst {
        fn observe_weighted(&mut self, item: u64, weight: f64) {
            self.observed += 1;
            if self.items.len() < self.capacity {
                self.items.push(SampledItem::new(item, weight));
            }
        }
        fn sample(&self) -> &[SampledItem<u64>] {
            &self.items
        }
        fn observed(&self) -> u64 {
            self.observed
        }
        fn capacity(&self) -> usize {
            self.capacity
        }
        fn name(&self) -> &'static str {
            "keep-first"
        }
    }

    #[test]
    fn default_observe_uses_unit_weight() {
        let mut s = KeepFirst {
            items: vec![],
            capacity: 2,
            observed: 0,
        };
        s.observe(7);
        assert_eq!(s.sample()[0].weight, 1.0);
        assert_eq!(s.sample()[0].item, 7);
    }

    #[test]
    fn provided_methods() {
        let mut s = KeepFirst {
            items: vec![],
            capacity: 2,
            observed: 0,
        };
        assert!(s.is_empty());
        assert_eq!(s.sampling_fraction(), 1.0);
        for i in 0..10 {
            s.observe(i);
        }
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.observed(), 10);
        assert!((s.sampling_fraction() - 0.2).abs() < 1e-12);
        assert_eq!(s.name(), "keep-first");
    }

    #[test]
    fn sampled_item_constructor() {
        let it = SampledItem::new("x", 2.5);
        assert_eq!(it.item, "x");
        assert_eq!(it.weight, 2.5);
    }
}
