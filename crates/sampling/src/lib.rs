//! # sciborq-sampling
//!
//! Reservoir-style sampling algorithms for building SciBORQ impressions.
//!
//! Incremental construction of impressions follows the reservoir paradigm
//! (Vitter 1985): a fixed capacity, sequential processing and an acceptance
//! test per tuple. The crate implements the three strategies from the paper
//! plus two classical baselines used in the ablation experiments:
//!
//! * [`Reservoir`] — Algorithm R, the uniform reservoir of Figure 2.
//! * [`LastSeenReservoir`] — the recency-biased "Last Seen" strategy of
//!   Figure 3 (fixed acceptance probability `k/D`).
//! * [`BiasedReservoir`] — the KDE-weighted biased reservoir of Figure 6
//!   (`P(accept t) = f̆(t)·N·n/cnt`).
//! * [`WeightedReservoir`] — Efraimidis–Spirakis A-Res weighted sampling
//!   without replacement (baseline).
//! * [`StratifiedSampler`] — per-bin uniform reservoirs (baseline).
//!
//! All strategies are deterministic given their seed, never exceed their
//! configured capacity, and expose the per-item interest weight so the
//! estimators in `sciborq-stats` can correct for the sampling design.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod biased;
pub mod error;
pub mod last_seen;
pub mod reservoir;
pub mod stratified;
pub mod traits;
pub mod weighted;

pub use biased::BiasedReservoir;
pub use error::{Result, SamplingError};
pub use last_seen::LastSeenReservoir;
pub use reservoir::Reservoir;
pub use stratified::{StratifiedSampler, StratumAllocation};
pub use traits::{SampledItem, SamplingStrategy};
pub use weighted::WeightedReservoir;
