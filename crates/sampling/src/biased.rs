//! The KDE-biased reservoir algorithm of the paper (Figure 6).
//!
//! For uniform sampling a tuple is accepted with probability `n/cnt`. For
//! biased sampling the acceptance probability of a tuple `t` becomes
//!
//! ```text
//! P(accept t) = f̆(t) · N · n / cnt
//! ```
//!
//! where `f̆` is the binned density estimator of the workload's predicate
//! set, `N` the number of observed predicate values, `n` the impression size
//! and `cnt` the number of tuples seen so far. Tuples whose attribute values
//! lie near the focal points of past queries therefore have a much higher
//! chance of being retained, which is exactly the enrichment visible in
//! Figure 7. Accepted tuples replace a uniformly random victim so the
//! reservoir size stays constant.

use crate::error::{Result, SamplingError};
use crate::traits::{SampledItem, SamplingStrategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The biased sampling reservoir of Figure 6.
///
/// The caller supplies each tuple's *interest weight* `f̆(t)·N` via
/// [`SamplingStrategy::observe_weighted`]; the reservoir handles the
/// `·n/cnt` normalisation and the replacement policy.
#[derive(Debug, Clone)]
pub struct BiasedReservoir<T> {
    sample: Vec<SampledItem<T>>,
    capacity: usize,
    observed: u64,
    accepted: u64,
    /// Multiplier applied to every interest weight (defaults to 1); the
    /// experiments use it to study over/under-biasing.
    bias_strength: f64,
    rng: StdRng,
}

impl<T> BiasedReservoir<T> {
    /// Create a biased reservoir of the given capacity.
    pub fn new(capacity: usize, seed: u64) -> Result<Self> {
        Self::with_bias_strength(capacity, 1.0, seed)
    }

    /// Create a biased reservoir whose interest weights are additionally
    /// scaled by `bias_strength` (1.0 = the paper's rule).
    pub fn with_bias_strength(capacity: usize, bias_strength: f64, seed: u64) -> Result<Self> {
        if capacity == 0 {
            return Err(SamplingError::InvalidParameter {
                name: "capacity",
                message: "must be positive".into(),
            });
        }
        if !(bias_strength > 0.0) || !bias_strength.is_finite() {
            return Err(SamplingError::InvalidParameter {
                name: "bias_strength",
                message: "must be positive and finite".into(),
            });
        }
        Ok(BiasedReservoir {
            sample: Vec::with_capacity(capacity),
            capacity,
            observed: 0,
            accepted: 0,
            bias_strength,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// The acceptance probability the next observation would get for a given
    /// interest weight: `min(1, weight · bias · n / (cnt+1))`.
    pub fn acceptance_probability(&self, interest_weight: f64) -> f64 {
        let cnt = (self.observed + 1) as f64;
        (interest_weight * self.bias_strength * self.capacity as f64 / cnt).min(1.0)
    }

    /// Number of accepted (possibly later replaced) tuples.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// The configured bias strength multiplier.
    pub fn bias_strength(&self) -> f64 {
        self.bias_strength
    }

    /// Consume the reservoir, returning the retained items with their
    /// interest weights (needed by the weighted estimators).
    pub fn into_sample(self) -> Vec<SampledItem<T>> {
        self.sample
    }
}

impl<T> SamplingStrategy<T> for BiasedReservoir<T> {
    fn observe_weighted(&mut self, item: T, weight: f64) {
        self.observed += 1;
        // invalid weights are treated as "no interest" rather than panicking
        // inside a load pipeline
        let weight = if weight.is_finite() && weight >= 0.0 {
            weight
        } else {
            0.0
        };
        if self.sample.len() < self.capacity {
            self.sample.push(SampledItem::new(item, weight));
            self.accepted += 1;
            return;
        }
        // rnd := random(); if (cnt*rnd) < (n*N*f̆(tpl)): smp[floor(rnd*n)] := tpl
        let rnd: f64 = self.rng.gen();
        let threshold = self.capacity as f64 * weight * self.bias_strength;
        if self.observed as f64 * rnd < threshold {
            let victim = self.rng.gen_range(0..self.capacity);
            self.sample[victim] = SampledItem::new(item, weight);
            self.accepted += 1;
        }
    }

    fn sample(&self) -> &[SampledItem<T>] {
        &self.sample
    }

    fn observed(&self) -> u64 {
        self.observed
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn name(&self) -> &'static str {
        "biased-reservoir"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parameter_validation() {
        assert!(BiasedReservoir::<u64>::new(0, 1).is_err());
        assert!(BiasedReservoir::<u64>::with_bias_strength(10, 0.0, 1).is_err());
        assert!(BiasedReservoir::<u64>::with_bias_strength(10, f64::NAN, 1).is_err());
        assert!(BiasedReservoir::<u64>::new(10, 1).is_ok());
    }

    #[test]
    fn acceptance_probability_formula() {
        let r = BiasedReservoir::<u64>::new(100, 1).unwrap();
        // cnt+1 = 1, weight 0.5 -> min(1, 0.5*100/1) = 1
        assert_eq!(r.acceptance_probability(0.5), 1.0);
        let mut r = BiasedReservoir::<u64>::new(100, 1).unwrap();
        for i in 0..10_000u64 {
            r.observe_weighted(i, 1.0);
        }
        // weight 2, n=100, cnt+1=10_001 -> 2*100/10001
        assert!((r.acceptance_probability(2.0) - 200.0 / 10_001.0).abs() < 1e-12);
        assert_eq!(r.bias_strength(), 1.0);
    }

    #[test]
    fn size_never_exceeds_capacity() {
        let mut r = BiasedReservoir::new(128, 3).unwrap();
        for i in 0..20_000u64 {
            r.observe_weighted(i, if i % 7 == 0 { 5.0 } else { 0.2 });
        }
        assert_eq!(r.len(), 128);
        assert_eq!(r.observed(), 20_000);
        assert_eq!(r.name(), "biased-reservoir");
        assert!(r.accepted() >= 128);
    }

    #[test]
    fn high_weight_items_are_enriched() {
        // Two classes of items: "focal" (weight 10) appearing 10% of the
        // time, "background" (weight 0.1) appearing 90% of the time.
        // Under uniform sampling the focal share of the sample would be ~10%;
        // under biased sampling it must be much larger.
        let mut r = BiasedReservoir::new(1000, 17).unwrap();
        let total = 200_000u64;
        for i in 0..total {
            let focal = i % 10 == 0;
            r.observe_weighted(i, if focal { 10.0 } else { 0.1 });
        }
        let focal_in_sample = r.sample().iter().filter(|s| s.item % 10 == 0).count();
        let share = focal_in_sample as f64 / r.len() as f64;
        assert!(
            share > 0.5,
            "focal items should dominate the biased sample, got share {share}"
        );
    }

    #[test]
    fn zero_weight_items_never_replace() {
        let mut r = BiasedReservoir::new(10, 23).unwrap();
        // fill with weight-1 items
        for i in 0..10u64 {
            r.observe_weighted(i, 1.0);
        }
        // stream many zero-weight items afterwards
        for i in 10..10_000u64 {
            r.observe_weighted(i, 0.0);
        }
        assert!(
            r.sample().iter().all(|s| s.item < 10),
            "zero-weight tuples must never evict interesting ones"
        );
    }

    #[test]
    fn negative_or_nan_weights_treated_as_zero() {
        let mut r = BiasedReservoir::new(5, 29).unwrap();
        for i in 0..5u64 {
            r.observe_weighted(i, 1.0);
        }
        for i in 5..1000u64 {
            r.observe_weighted(i, if i % 2 == 0 { -3.0 } else { f64::NAN });
        }
        assert!(r.sample().iter().all(|s| s.item < 5));
        // weights recorded for the retained items stay the originals
        assert!(r.sample().iter().all(|s| s.weight == 1.0));
    }

    #[test]
    fn bias_strength_amplifies_enrichment() {
        let share_for = |strength: f64| {
            let mut r = BiasedReservoir::with_bias_strength(500, strength, 31).unwrap();
            for i in 0..100_000u64 {
                let focal = i % 10 == 0;
                r.observe_weighted(i, if focal { 3.0 } else { 0.3 });
            }
            r.sample().iter().filter(|s| s.item % 10 == 0).count() as f64 / r.len() as f64
        };
        let weak = share_for(0.2);
        let strong = share_for(5.0);
        assert!(
            strong > weak,
            "stronger bias should enrich more: weak {weak} vs strong {strong}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed| {
            let mut r = BiasedReservoir::new(64, seed).unwrap();
            for i in 0..10_000u64 {
                r.observe_weighted(i, (i % 13) as f64 / 6.0);
            }
            r.sample().iter().map(|s| s.item).collect::<Vec<_>>()
        };
        assert_eq!(run(77), run(77));
    }

    #[test]
    fn into_sample_preserves_weights() {
        let mut r = BiasedReservoir::new(3, 41).unwrap();
        r.observe_weighted(1u64, 0.5);
        r.observe_weighted(2u64, 1.5);
        let s = r.into_sample();
        assert_eq!(s.len(), 2);
        assert_eq!(s[1].weight, 1.5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn size_invariant(
            cap in 1usize..64,
            stream in 0u64..2000,
            seed in 0u64..u64::MAX,
        ) {
            let mut r = BiasedReservoir::new(cap, seed).unwrap();
            for i in 0..stream {
                r.observe_weighted(i, ((i % 5) as f64) / 2.0);
            }
            prop_assert_eq!(r.len() as u64, stream.min(cap as u64));
            prop_assert_eq!(r.observed(), stream);
        }

        #[test]
        fn acceptance_probability_in_unit_interval(
            weight in 0.0f64..100.0,
            observed in 0u64..100_000,
        ) {
            let mut r = BiasedReservoir::<u64>::new(50, 1).unwrap();
            for i in 0..observed.min(200) {
                r.observe_weighted(i, 1.0);
            }
            let p = r.acceptance_probability(weight);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }
}
