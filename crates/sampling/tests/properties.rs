//! Property-based tests of the sampling crate's statistical contracts:
//! size invariants of every reservoir variant, inclusion-probability
//! monotonicity of weighted sampling, and conservation laws of stratified
//! allocation.

use proptest::prelude::*;
use sciborq_sampling::{
    BiasedReservoir, LastSeenReservoir, Reservoir, SamplingStrategy, StratifiedSampler,
    StratumAllocation, WeightedReservoir,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Algorithm R: the reservoir holds exactly `min(capacity, stream)`
    /// items, every retained item came from the stream, and there are no
    /// duplicates (sampling is without replacement).
    #[test]
    fn reservoir_size_and_membership(
        cap in 1usize..128,
        stream in 0u64..4_000,
        seed in 0u64..u64::MAX,
    ) {
        let mut r = Reservoir::new(cap, seed);
        for i in 0..stream {
            r.observe(i);
        }
        prop_assert_eq!(r.len() as u64, stream.min(cap as u64));
        prop_assert_eq!(r.observed(), stream);
        let mut seen = std::collections::HashSet::new();
        for s in r.sample() {
            prop_assert!(s.item < stream, "item {} not from the stream", s.item);
            prop_assert!(seen.insert(s.item), "item {} retained twice", s.item);
        }
    }

    /// Every reservoir variant obeys the capacity bound on the same stream.
    #[test]
    fn all_variants_respect_capacity(
        cap in 1usize..64,
        stream in 0u64..2_000,
        seed in 0u64..u64::MAX,
    ) {
        let mut uniform = Reservoir::new(cap, seed);
        let mut biased = BiasedReservoir::new(cap, seed).unwrap();
        let mut weighted = WeightedReservoir::new(cap, seed).unwrap();
        let mut last_seen =
            LastSeenReservoir::new(cap, cap as f64 * 0.5, 100.0, seed).unwrap();
        for i in 0..stream {
            let w = 0.1 + (i % 13) as f64;
            uniform.observe(i);
            biased.observe_weighted(i, w);
            weighted.observe_weighted(i, w);
            last_seen.observe(i);
        }
        prop_assert!(uniform.len() <= cap);
        prop_assert!(biased.len() <= cap);
        prop_assert!(weighted.sample_vec().len() <= cap);
        prop_assert!(last_seen.len() <= cap);
    }

    /// A-Res weighted sampling: raising an item's weight can only raise its
    /// inclusion probability. Two designated items with weight ratio ≥ 4 are
    /// streamed among uniform-weight background items; across many seeded
    /// runs the heavy item must be retained at least as often as the light
    /// one (with slack far below the expected gap).
    #[test]
    fn weighted_inclusion_probability_is_monotone_in_weight(
        cap in 2usize..12,
        background in 40u64..120,
        w_light in 0.2f64..1.0,
        ratio in 4.0f64..16.0,
        seed_base in 0u64..1_000_000,
    ) {
        let w_heavy = w_light * ratio;
        let trials = 120u64;
        let mut heavy_hits = 0u32;
        let mut light_hits = 0u32;
        for t in 0..trials {
            let mut r = WeightedReservoir::new(cap, seed_base.wrapping_add(t)).unwrap();
            // interleave the designated items mid-stream
            for i in 0..background {
                if i == background / 3 {
                    r.observe_weighted(u64::MAX, w_heavy);
                }
                if i == 2 * background / 3 {
                    r.observe_weighted(u64::MAX - 1, w_light);
                }
                r.observe_weighted(i, 1.0);
            }
            let sample = r.sample_vec();
            if sample.iter().any(|s| s.item == u64::MAX) {
                heavy_hits += 1;
            }
            if sample.iter().any(|s| s.item == u64::MAX - 1) {
                light_hits += 1;
            }
        }
        // Binomial noise over 120 trials is ≈ ±10 at worst; a weight ratio
        // of ≥ 4 separates the two means by much more unless both saturate
        // (inclusion ≈ 1), which the `+ 12` slack also absorbs.
        prop_assert!(
            heavy_hits + 12 >= light_hits,
            "heavy item retained {heavy_hits}/{trials}, light {light_hits}/{trials}"
        );
    }

    /// Stratified allocation: per-stratum capacities always sum to at least
    /// the requested capacity with every stratum non-empty, for both
    /// allocation modes and arbitrary non-negative weight vectors.
    #[test]
    fn stratified_allocation_sums(
        strata in 1usize..24,
        spare in 0usize..200,
        weights in proptest::collection::vec(0.0f64..10.0, 1..24),
        seed in 0u64..u64::MAX,
    ) {
        let capacity = strata + spare;
        let equal = StratifiedSampler::<u64>::new(
            0.0, 360.0, strata, capacity, StratumAllocation::Equal, None, seed,
        ).unwrap();
        let caps = equal.stratum_capacities();
        prop_assert_eq!(caps.len(), strata);
        prop_assert_eq!(caps.iter().sum::<usize>(), capacity);
        prop_assert!(caps.iter().all(|&c| c >= 1));
        // equal split never differs by more than one slot
        let (lo, hi) = (caps.iter().min().unwrap(), caps.iter().max().unwrap());
        prop_assert!(hi - lo <= 1);

        let mut w = weights;
        w.resize(strata, 0.5);
        if w.iter().sum::<f64>() <= 0.0 {
            w[0] = 1.0;
        }
        let proportional = StratifiedSampler::<u64>::new(
            0.0, 360.0, strata, capacity, StratumAllocation::Proportional, Some(&w), seed,
        ).unwrap();
        let caps = proportional.stratum_capacities();
        prop_assert_eq!(caps.len(), strata);
        prop_assert_eq!(caps.iter().sum::<usize>(), capacity);
        prop_assert!(caps.iter().all(|&c| c >= 1));
    }

    /// Streaming through a stratified sampler conserves counts: retained =
    /// Σ per-stratum sizes ≤ capacity, and every stratum stays within its
    /// own allocation.
    #[test]
    fn stratified_observation_conserves_counts(
        strata in 1usize..12,
        spare in 0usize..60,
        stream in 0u64..3_000,
        seed in 0u64..u64::MAX,
    ) {
        let capacity = strata + spare;
        let mut s = StratifiedSampler::new(
            0.0, 360.0, strata, capacity, StratumAllocation::Equal, None, seed,
        ).unwrap();
        for i in 0..stream {
            s.observe_value(i, (i as f64 * 7.31) % 360.0);
        }
        prop_assert_eq!(s.observed(), stream);
        let sizes = s.stratum_sizes();
        let caps = s.stratum_capacities();
        prop_assert_eq!(sizes.iter().sum::<usize>(), s.retained());
        prop_assert!(s.retained() <= capacity.max(strata));
        for (sz, cp) in sizes.iter().zip(caps.iter()) {
            prop_assert!(sz <= cp, "stratum holds {sz} > capacity {cp}");
        }
        prop_assert_eq!(s.sample_vec().len(), s.retained());
    }
}
