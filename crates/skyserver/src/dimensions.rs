//! Dimension tables of the synthetic SkyServer schema.
//!
//! The paper's Figure 1 shows `PhotoObjAll` surrounded by dimension tables
//! (`Field`, `Frame`, `PhotoTag`, …) reached through foreign-key joins. Two
//! representative dimensions are generated here so that the reproduction can
//! exercise FK joins, join-aware impressions and the `Galaxy`-style views:
//!
//! * `field` — the imaging field each detection belongs to (run, camcol,
//!   observation quality, airmass),
//! * `photo_type` — the small lookup table mapping class labels to codes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sciborq_columnar::{DataType, Field, Schema, SchemaRef, Table, Value};

/// Schema of the `field` dimension table.
pub fn field_schema() -> SchemaRef {
    Schema::shared(vec![
        Field::new("field_id", DataType::Int64),
        Field::new("run", DataType::Int64),
        Field::new("camcol", DataType::Int64),
        Field::new("quality", DataType::Int64),
        Field::new("airmass", DataType::Float64),
    ])
    .expect("static schema is valid")
}

/// Generate the `field` dimension table with `field_count` rows.
///
/// `field_id` runs from 1 to `field_count`, matching the foreign keys emitted
/// by the `PhotoObjAll` generator.
pub fn generate_field_table(field_count: u32, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut table = Table::with_capacity("field", field_schema(), field_count as usize);
    for field_id in 1..=field_count as i64 {
        let run = 1000 + field_id / 8;
        let camcol = (field_id % 6) + 1;
        // quality 1 (bad) .. 3 (good); most fields are good
        let quality = if rng.gen_bool(0.85) {
            3
        } else if rng.gen_bool(0.6) {
            2
        } else {
            1
        };
        let airmass = 1.0 + rng.gen_range(0.0..0.8);
        table
            .append_row(&[
                Value::Int64(field_id),
                Value::Int64(run),
                Value::Int64(camcol),
                Value::Int64(quality),
                Value::Float64(airmass),
            ])
            .expect("generated row matches schema");
    }
    table
}

/// Schema of the `photo_type` lookup table.
pub fn photo_type_schema() -> SchemaRef {
    Schema::shared(vec![
        Field::new("type_id", DataType::Int64),
        Field::new("name", DataType::Utf8),
        Field::new("description", DataType::Utf8),
    ])
    .expect("static schema is valid")
}

/// Generate the `photo_type` lookup table (galaxy / star / QSO / unknown).
pub fn generate_photo_type_table() -> Table {
    let mut table = Table::new("photo_type", photo_type_schema());
    let rows: [(i64, &str, &str); 4] = [
        (0, "UNKNOWN", "Unclassified detection"),
        (3, "GALAXY", "Extended extragalactic source"),
        (6, "STAR", "Point source within the Milky Way"),
        (8, "QSO", "Quasi-stellar object"),
    ];
    for (type_id, name, description) in rows {
        table
            .append_row(&[
                Value::Int64(type_id),
                Value::Utf8(name.to_owned()),
                Value::Utf8(description.to_owned()),
            ])
            .expect("static rows match schema");
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use sciborq_columnar::{Predicate, SelectionVector};

    #[test]
    fn field_schema_columns() {
        let s = field_schema();
        assert_eq!(
            s.names(),
            vec!["field_id", "run", "camcol", "quality", "airmass"]
        );
    }

    #[test]
    fn field_table_covers_all_ids() {
        let t = generate_field_table(64, 1);
        assert_eq!(t.row_count(), 64);
        let ids = t.column("field_id").unwrap();
        assert_eq!(ids.get_i64(0), Some(1));
        assert_eq!(ids.get_i64(63), Some(64));
        // camcol in 1..=6, quality in 1..=3, airmass >= 1
        for i in 0..t.row_count() {
            let camcol = t.column("camcol").unwrap().get_i64(i).unwrap();
            assert!((1..=6).contains(&camcol));
            let quality = t.column("quality").unwrap().get_i64(i).unwrap();
            assert!((1..=3).contains(&quality));
            let airmass = t.column("airmass").unwrap().get_f64(i).unwrap();
            assert!((1.0..1.8).contains(&airmass));
        }
    }

    #[test]
    fn field_table_deterministic() {
        assert_eq!(generate_field_table(32, 9), generate_field_table(32, 9));
    }

    #[test]
    fn most_fields_are_good_quality() {
        let t = generate_field_table(500, 2);
        let sel = Predicate::eq("quality", 3).evaluate(&t).unwrap();
        assert!(sel.len() as f64 / 500.0 > 0.7);
    }

    #[test]
    fn photo_type_table_contents() {
        let t = generate_photo_type_table();
        assert_eq!(t.row_count(), 4);
        let sel = Predicate::eq("name", "GALAXY").evaluate(&t).unwrap();
        assert_eq!(sel.len(), 1);
        let row = t.row(sel.rows()[0]).unwrap();
        assert_eq!(row[0], Value::Int64(3));
        // all rows have non-empty descriptions
        let desc = t.column("description").unwrap();
        for i in 0..t.row_count() {
            assert!(!desc.get(i).unwrap().as_str().unwrap().is_empty());
        }
        let _ = SelectionVector::all(t.row_count());
    }

    #[test]
    fn empty_field_table_allowed() {
        let t = generate_field_table(0, 3);
        assert_eq!(t.row_count(), 0);
    }
}
