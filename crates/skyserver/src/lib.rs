//! # sciborq-skyserver
//!
//! A synthetic Sloan Digital Sky Survey style data warehouse: the substrate
//! the SciBORQ experiments run against.
//!
//! The paper evaluates against the 4 TB SkyServer database and its public
//! query logs; neither is redistributable at that scale, so this crate
//! generates a statistically similar stand-in (see DESIGN.md for the
//! substitution argument):
//!
//! * [`PhotoObjGenerator`] — a clustered synthetic `PhotoObjAll` fact table
//!   streamed in incremental-load batches,
//! * [`generate_field_table`] / [`generate_photo_type_table`] — dimension
//!   tables reached through foreign keys (Figure 1),
//! * [`Cone`] / [`get_nearby_obj_eq`] — the `fGetNearbyObjEq` cone-search
//!   function of the SkyServer schema,
//! * [`SkyDataset`] — an end-to-end builder registering everything in a
//!   [`sciborq_columnar::Catalog`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cone;
pub mod dataset;
pub mod dimensions;
pub mod photoobj;

pub use cone::{get_nearby_obj_eq, Cone};
pub use dataset::{DatasetConfig, SkyDataset};
pub use dimensions::{
    field_schema, generate_field_table, generate_photo_type_table, photo_type_schema,
};
pub use photoobj::{photoobj_schema, PhotoObjGenerator, SkyCluster, SkyConfig};
