//! Synthetic `PhotoObjAll` generator.
//!
//! The paper's experiments run against the SkyServer `PhotoObjAll` fact table
//! (billions of astronomical detections with `ra`/`dec` positions and
//! photometric measurements). The real catalogue is not redistributable at
//! that scale, so this module generates a synthetic catalogue with the
//! statistical properties the SciBORQ experiments depend on:
//!
//! * spatially clustered positions (galaxy clusters / survey stripes) so that
//!   cone searches have widely varying selectivity,
//! * correlated photometric attributes (magnitudes, redshift) so aggregate
//!   queries have non-trivial variance,
//! * a class label (GALAXY / STAR / QSO) with realistic-ish proportions,
//! * a foreign key into the `Field` dimension table.
//!
//! Generation is streaming and batch-oriented: the same `RecordBatch`es that
//! are appended to the base table are fed to the impression builders,
//! mirroring the paper's load-time construction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sciborq_columnar::{
    DataType, Field, RecordBatch, RecordBatchBuilder, Schema, SchemaRef, Value,
};
use serde::{Deserialize, Serialize};

/// A cluster of objects on the sky.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SkyCluster {
    /// Right ascension of the cluster centre, degrees.
    pub ra: f64,
    /// Declination of the cluster centre, degrees.
    pub dec: f64,
    /// Standard deviation of member positions, degrees.
    pub spread: f64,
    /// Relative share of objects belonging to this cluster.
    pub weight: f64,
}

impl SkyCluster {
    /// Convenience constructor.
    pub fn new(ra: f64, dec: f64, spread: f64, weight: f64) -> Self {
        SkyCluster {
            ra,
            dec,
            spread,
            weight,
        }
    }
}

/// Configuration of the synthetic sky catalogue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkyConfig {
    /// Object clusters; the remaining objects are spread uniformly.
    pub clusters: Vec<SkyCluster>,
    /// Fraction of objects drawn uniformly over the whole sky (field
    /// objects not belonging to any cluster).
    pub background_fraction: f64,
    /// Number of entries in the `Field` dimension table the fact table's
    /// foreign key references.
    pub field_count: u32,
    /// Fraction of objects whose redshift measurement is missing (NULL).
    pub missing_redshift_fraction: f64,
}

impl Default for SkyConfig {
    fn default() -> Self {
        SkyConfig {
            clusters: vec![
                SkyCluster::new(185.0, 0.0, 4.0, 0.45),
                SkyCluster::new(160.0, 25.0, 6.0, 0.25),
                SkyCluster::new(230.0, 45.0, 3.0, 0.10),
            ],
            background_fraction: 0.2,
            field_count: 512,
            missing_redshift_fraction: 0.1,
        }
    }
}

/// The schema of the synthetic `PhotoObjAll` table.
pub fn photoobj_schema() -> SchemaRef {
    Schema::shared(vec![
        Field::new("objid", DataType::Int64),
        Field::new("field_id", DataType::Int64),
        Field::new("ra", DataType::Float64),
        Field::new("dec", DataType::Float64),
        Field::new("g_mag", DataType::Float64),
        Field::new("r_mag", DataType::Float64),
        Field::new("i_mag", DataType::Float64),
        Field::nullable("redshift", DataType::Float64),
        Field::new("class", DataType::Utf8),
    ])
    .expect("static schema is valid")
}

/// A streaming generator of synthetic `PhotoObjAll` rows.
#[derive(Debug, Clone)]
pub struct PhotoObjGenerator {
    config: SkyConfig,
    schema: SchemaRef,
    rng: StdRng,
    next_objid: i64,
}

impl PhotoObjGenerator {
    /// Create a generator with the given configuration and seed.
    pub fn new(config: SkyConfig, seed: u64) -> Self {
        PhotoObjGenerator {
            config,
            schema: photoobj_schema(),
            rng: StdRng::seed_from_u64(seed),
            next_objid: 1,
        }
    }

    /// Create a generator with the default sky configuration.
    pub fn default_sky(seed: u64) -> Self {
        Self::new(SkyConfig::default(), seed)
    }

    /// The generator's configuration.
    pub fn config(&self) -> &SkyConfig {
        &self.config
    }

    /// The `PhotoObjAll` schema the generator produces.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of objects generated so far.
    pub fn generated(&self) -> i64 {
        self.next_objid - 1
    }

    fn sample_normal(&mut self, mean: f64, sd: f64) -> f64 {
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        mean + sd * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    fn pick_cluster(&mut self) -> Option<SkyCluster> {
        if self.config.clusters.is_empty() {
            return None;
        }
        let total: f64 = self.config.clusters.iter().map(|c| c.weight).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.rng.gen_range(0.0..total);
        for c in &self.config.clusters {
            if target < c.weight {
                return Some(*c);
            }
            target -= c.weight;
        }
        self.config.clusters.last().copied()
    }

    /// Generate the next row as a value vector in schema order.
    pub fn next_row(&mut self) -> Vec<Value> {
        let objid = self.next_objid;
        self.next_objid += 1;

        let background = self
            .rng
            .gen_bool(self.config.background_fraction.clamp(0.0, 1.0));
        let (ra, dec) = if background {
            (
                self.rng.gen_range(0.0..360.0),
                self.rng.gen_range(-90.0..90.0),
            )
        } else if let Some(cluster) = self.pick_cluster() {
            (
                self.sample_normal(cluster.ra, cluster.spread)
                    .rem_euclid(360.0),
                self.sample_normal(cluster.dec, cluster.spread)
                    .clamp(-90.0, 90.0),
            )
        } else {
            (
                self.rng.gen_range(0.0..360.0),
                self.rng.gen_range(-90.0..90.0),
            )
        };

        // Class mix roughly follows SDSS photometric proportions.
        let class_draw: f64 = self.rng.gen();
        let (class, base_mag, redshift_scale) = if class_draw < 0.62 {
            ("GALAXY", 19.5, 0.25)
        } else if class_draw < 0.95 {
            ("STAR", 17.5, 0.0005)
        } else {
            ("QSO", 20.5, 1.4)
        };

        // r-band magnitude with per-class offsets; g and i correlated with r.
        let r_mag = (self.sample_normal(base_mag, 1.4)).clamp(12.0, 26.0);
        let g_mag = (r_mag + self.sample_normal(0.6, 0.3)).clamp(12.0, 27.0);
        let i_mag = (r_mag - self.sample_normal(0.3, 0.2)).clamp(11.0, 26.0);

        let redshift = if self
            .rng
            .gen_bool(self.config.missing_redshift_fraction.clamp(0.0, 1.0))
        {
            Value::Null
        } else {
            Value::Float64((self.sample_normal(redshift_scale, redshift_scale / 2.0 + 1e-4)).abs())
        };

        // Fields tile the sky in ra stripes so the FK correlates with position.
        let field_id = ((ra / 360.0 * self.config.field_count as f64) as i64)
            .clamp(0, self.config.field_count as i64 - 1)
            + 1;

        vec![
            Value::Int64(objid),
            Value::Int64(field_id),
            Value::Float64(ra),
            Value::Float64(dec),
            Value::Float64(g_mag),
            Value::Float64(r_mag),
            Value::Float64(i_mag),
            redshift,
            Value::Utf8(class.to_owned()),
        ]
    }

    /// Generate a batch of `rows` objects (one incremental load).
    pub fn next_batch(&mut self, rows: usize) -> RecordBatch {
        let mut builder = RecordBatchBuilder::with_capacity(self.schema.clone(), rows);
        for _ in 0..rows {
            let row = self.next_row();
            builder
                .push_row(&row)
                .expect("generated rows always match the schema");
        }
        builder.finish().expect("generated batch is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_expected_columns() {
        let s = photoobj_schema();
        assert_eq!(
            s.names(),
            vec!["objid", "field_id", "ra", "dec", "g_mag", "r_mag", "i_mag", "redshift", "class"]
        );
        assert!(s.field("redshift").unwrap().nullable);
        assert!(!s.field("ra").unwrap().nullable);
    }

    #[test]
    fn generator_produces_valid_batches() {
        let mut g = PhotoObjGenerator::default_sky(1);
        let b = g.next_batch(1000);
        assert_eq!(b.row_count(), 1000);
        assert_eq!(g.generated(), 1000);
        // objids are dense and increasing
        let objids = b.column("objid").unwrap();
        assert_eq!(objids.get_i64(0), Some(1));
        assert_eq!(objids.get_i64(999), Some(1000));
        // positions lie in their domains
        let ra = b.column("ra").unwrap();
        let dec = b.column("dec").unwrap();
        for i in 0..1000 {
            let r = ra.get_f64(i).unwrap();
            let d = dec.get_f64(i).unwrap();
            assert!((0.0..360.0).contains(&r), "ra {r}");
            assert!((-90.0..=90.0).contains(&d), "dec {d}");
        }
    }

    #[test]
    fn consecutive_batches_continue_objids() {
        let mut g = PhotoObjGenerator::default_sky(2);
        let _ = g.next_batch(10);
        let b2 = g.next_batch(5);
        assert_eq!(b2.column("objid").unwrap().get_i64(0), Some(11));
        assert_eq!(g.generated(), 15);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = PhotoObjGenerator::default_sky(7).next_batch(100);
        let b = PhotoObjGenerator::default_sky(7).next_batch(100);
        assert_eq!(a, b);
        let c = PhotoObjGenerator::default_sky(8).next_batch(100);
        assert_ne!(a, c);
    }

    #[test]
    fn positions_cluster_around_configured_centres() {
        let mut g = PhotoObjGenerator::default_sky(3);
        let b = g.next_batch(20_000);
        let ra = b.column("ra").unwrap();
        let near_main = (0..b.row_count())
            .filter_map(|i| ra.get_f64(i))
            .filter(|r| (*r - 185.0).abs() < 10.0)
            .count();
        // the main cluster holds ~45% of objects (minus background spread);
        // a uniform sky would put only ~5.5% of objects in a 20° window
        let share = near_main as f64 / b.row_count() as f64;
        assert!(share > 0.3, "share near main cluster = {share}");
    }

    #[test]
    fn class_mix_is_galaxy_dominated() {
        let mut g = PhotoObjGenerator::default_sky(4);
        let b = g.next_batch(10_000);
        let class = b.column("class").unwrap();
        let mut galaxies = 0;
        let mut stars = 0;
        let mut qsos = 0;
        for i in 0..b.row_count() {
            match class.get(i).unwrap().as_str().unwrap() {
                "GALAXY" => galaxies += 1,
                "STAR" => stars += 1,
                "QSO" => qsos += 1,
                other => panic!("unexpected class {other}"),
            }
        }
        assert!(galaxies > stars && stars > qsos);
        assert!(qsos > 0);
    }

    #[test]
    fn redshift_nulls_match_configuration() {
        let config = SkyConfig {
            missing_redshift_fraction: 0.5,
            ..SkyConfig::default()
        };
        let mut g = PhotoObjGenerator::new(config, 5);
        let b = g.next_batch(4000);
        let nulls = b.column("redshift").unwrap().null_count();
        let frac = nulls as f64 / 4000.0;
        assert!((frac - 0.5).abs() < 0.05, "null fraction {frac}");
        // magnitudes are never NULL
        assert_eq!(b.column("r_mag").unwrap().null_count(), 0);
    }

    #[test]
    fn field_ids_reference_configured_dimension() {
        let config = SkyConfig {
            field_count: 16,
            ..SkyConfig::default()
        };
        let mut g = PhotoObjGenerator::new(config, 6);
        let b = g.next_batch(2000);
        let fid = b.column("field_id").unwrap();
        for i in 0..b.row_count() {
            let f = fid.get_i64(i).unwrap();
            assert!((1..=16).contains(&f), "field_id {f}");
        }
    }

    #[test]
    fn empty_cluster_config_spreads_uniformly() {
        let config = SkyConfig {
            clusters: vec![],
            background_fraction: 0.0,
            ..SkyConfig::default()
        };
        let mut g = PhotoObjGenerator::new(config, 9);
        let b = g.next_batch(5000);
        let ra = b.column("ra").unwrap();
        // roughly uniform: each quadrant should hold 15-35%
        for q in 0..4 {
            let lo = q as f64 * 90.0;
            let hi = lo + 90.0;
            let count = (0..b.row_count())
                .filter_map(|i| ra.get_f64(i))
                .filter(|r| *r >= lo && *r < hi)
                .count();
            let share = count as f64 / 5000.0;
            assert!(share > 0.15 && share < 0.35, "quadrant {q} share {share}");
        }
    }

    #[test]
    fn magnitudes_are_correlated() {
        let mut g = PhotoObjGenerator::default_sky(10);
        let b = g.next_batch(5000);
        let r = b.column("r_mag").unwrap();
        let gm = b.column("g_mag").unwrap();
        // compute Pearson correlation between r and g magnitudes
        let pairs: Vec<(f64, f64)> = (0..b.row_count())
            .map(|i| (r.get_f64(i).unwrap(), gm.get_f64(i).unwrap()))
            .collect();
        let n = pairs.len() as f64;
        let mean_r = pairs.iter().map(|p| p.0).sum::<f64>() / n;
        let mean_g = pairs.iter().map(|p| p.1).sum::<f64>() / n;
        let cov = pairs
            .iter()
            .map(|p| (p.0 - mean_r) * (p.1 - mean_g))
            .sum::<f64>()
            / n;
        let sd_r = (pairs.iter().map(|p| (p.0 - mean_r).powi(2)).sum::<f64>() / n).sqrt();
        let sd_g = (pairs.iter().map(|p| (p.1 - mean_g).powi(2)).sum::<f64>() / n).sqrt();
        let corr = cov / (sd_r * sd_g);
        assert!(corr > 0.8, "g/r magnitude correlation {corr}");
    }
}
