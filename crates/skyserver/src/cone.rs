//! Cone search — the `fGetNearbyObjEq` function of the SkyServer schema.
//!
//! The paper's prototypical query (Figure 1) joins the `Galaxy` view against
//! `dbo.fGetNearbyObjEq(185, 0, 3)`, which returns every object within an
//! angular radius of a sky position. This module implements the exact
//! great-circle version of that function on top of the columnar substrate,
//! plus the bounding-box approximation that the query rewriter produces and
//! SciBORQ's predicate logging sees.

use sciborq_columnar::{Predicate, Result, SelectionVector, Table, Value};
use serde::{Deserialize, Serialize};

/// A cone on the celestial sphere.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cone {
    /// Right ascension of the cone axis, degrees.
    pub ra: f64,
    /// Declination of the cone axis, degrees.
    pub dec: f64,
    /// Angular radius, degrees.
    pub radius: f64,
}

impl Cone {
    /// Create a cone; the radius is clamped to be non-negative.
    pub fn new(ra: f64, dec: f64, radius: f64) -> Self {
        Cone {
            ra,
            dec,
            radius: radius.max(0.0),
        }
    }

    /// Angular (great-circle) distance in degrees between the cone axis and
    /// a point, using the haversine formula for numerical stability at small
    /// separations.
    pub fn angular_distance(&self, ra: f64, dec: f64) -> f64 {
        let to_rad = std::f64::consts::PI / 180.0;
        let d_ra = (ra - self.ra) * to_rad;
        let d_dec = (dec - self.dec) * to_rad;
        let a = (d_dec / 2.0).sin().powi(2)
            + (self.dec * to_rad).cos() * (dec * to_rad).cos() * (d_ra / 2.0).sin().powi(2);
        2.0 * a.sqrt().clamp(-1.0, 1.0).asin() / to_rad
    }

    /// Whether a point lies inside the cone.
    pub fn contains(&self, ra: f64, dec: f64) -> bool {
        self.angular_distance(ra, dec) <= self.radius
    }

    /// The bounding-box predicate the SkyServer rewriter produces for this
    /// cone (`ra BETWEEN … AND … AND dec BETWEEN … AND …`), with the right
    /// ascension window widened by `1/cos(dec)` away from the equator.
    pub fn bounding_box_predicate(&self, ra_column: &str, dec_column: &str) -> Predicate {
        let to_rad = std::f64::consts::PI / 180.0;
        let cos_dec = (self.dec * to_rad).cos().abs().max(1e-3);
        let ra_radius = (self.radius / cos_dec).min(180.0);
        Predicate::Between {
            column: ra_column.to_owned(),
            low: Value::Float64(self.ra - ra_radius),
            high: Value::Float64(self.ra + ra_radius),
        }
        .and(Predicate::Between {
            column: dec_column.to_owned(),
            low: Value::Float64(self.dec - self.radius),
            high: Value::Float64(self.dec + self.radius),
        })
    }
}

/// `fGetNearbyObjEq`: return the rows of `table` whose (`ra_column`,
/// `dec_column`) position lies within the cone.
///
/// The implementation first evaluates the cheap bounding-box predicate and
/// then refines with the exact angular distance, exactly like the SkyServer
/// function. Rows with NULL coordinates never qualify.
pub fn get_nearby_obj_eq(
    table: &Table,
    ra_column: &str,
    dec_column: &str,
    cone: Cone,
) -> Result<SelectionVector> {
    let candidates = cone
        .bounding_box_predicate(ra_column, dec_column)
        .evaluate(table)?;
    let ra_col = table.column(ra_column)?;
    let dec_col = table.column(dec_column)?;
    let mut rows = Vec::with_capacity(candidates.len());
    for row in candidates.iter() {
        if let (Some(ra), Some(dec)) = (ra_col.get_f64(row), dec_col.get_f64(row)) {
            if cone.contains(ra, dec) {
                rows.push(row);
            }
        }
    }
    Ok(SelectionVector::from_sorted_rows(rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sciborq_columnar::{DataType, Field, Schema};

    fn positions_table(points: &[(f64, f64)]) -> Table {
        let schema = Schema::shared(vec![
            Field::new("ra", DataType::Float64),
            Field::new("dec", DataType::Float64),
        ])
        .unwrap();
        let mut t = Table::new("pos", schema);
        for &(ra, dec) in points {
            t.append_row(&[Value::Float64(ra), Value::Float64(dec)])
                .unwrap();
        }
        t
    }

    #[test]
    fn radius_clamped_non_negative() {
        let c = Cone::new(10.0, 0.0, -5.0);
        assert_eq!(c.radius, 0.0);
    }

    #[test]
    fn angular_distance_known_values() {
        let c = Cone::new(0.0, 0.0, 1.0);
        assert!(c.angular_distance(0.0, 0.0).abs() < 1e-9);
        assert!((c.angular_distance(1.0, 0.0) - 1.0).abs() < 1e-6);
        assert!((c.angular_distance(0.0, 1.0) - 1.0).abs() < 1e-6);
        assert!((c.angular_distance(180.0, 0.0) - 180.0).abs() < 1e-6);
        // at dec=60 a 1-degree ra offset is only ~0.5 degrees of arc
        let c = Cone::new(0.0, 60.0, 1.0);
        let d = c.angular_distance(1.0, 60.0);
        assert!((d - 0.5).abs() < 0.01, "d = {d}");
    }

    #[test]
    fn contains_respects_radius() {
        let c = Cone::new(185.0, 0.0, 3.0);
        assert!(c.contains(185.0, 0.0));
        assert!(c.contains(187.9, 0.0));
        assert!(!c.contains(189.0, 0.0));
        assert!(!c.contains(185.0, 4.0));
    }

    #[test]
    fn bounding_box_widens_with_declination() {
        let equator = Cone::new(180.0, 0.0, 2.0);
        let polar = Cone::new(180.0, 75.0, 2.0);
        let eq_str = equator.bounding_box_predicate("ra", "dec").to_string();
        let polar_str = polar.bounding_box_predicate("ra", "dec").to_string();
        assert!(eq_str.contains("ra BETWEEN 178 AND 182"));
        // at dec 75 the ra window must be wider than ±2
        assert!(!polar_str.contains("ra BETWEEN 178 AND 182"));
    }

    #[test]
    fn nearby_obj_matches_exact_cone() {
        let points = vec![
            (185.0, 0.0),  // centre
            (186.5, 0.5),  // inside
            (188.5, 0.0),  // outside (3.5 deg away)
            (185.0, 2.9),  // inside
            (185.0, -3.5), // outside
            (20.0, 50.0),  // far away
        ];
        let t = positions_table(&points);
        let sel = get_nearby_obj_eq(&t, "ra", "dec", Cone::new(185.0, 0.0, 3.0)).unwrap();
        assert_eq!(sel.rows(), &[0, 1, 3]);
    }

    #[test]
    fn bounding_box_is_superset_of_cone() {
        // corner of the box is outside the cone but inside the box
        let points = vec![(187.5, 2.5)];
        let t = positions_table(&points);
        let cone = Cone::new(185.0, 0.0, 3.0);
        let boxed = cone
            .bounding_box_predicate("ra", "dec")
            .evaluate(&t)
            .unwrap();
        let exact = get_nearby_obj_eq(&t, "ra", "dec", cone).unwrap();
        assert_eq!(boxed.len(), 1);
        assert_eq!(exact.len(), 0);
    }

    #[test]
    fn null_positions_never_match() {
        let schema = Schema::shared(vec![
            Field::nullable("ra", DataType::Float64),
            Field::nullable("dec", DataType::Float64),
        ])
        .unwrap();
        let mut t = Table::new("pos", schema);
        t.append_row(&[Value::Null, Value::Float64(0.0)]).unwrap();
        t.append_row(&[Value::Float64(185.0), Value::Null]).unwrap();
        t.append_row(&[Value::Float64(185.0), Value::Float64(0.0)])
            .unwrap();
        let sel = get_nearby_obj_eq(&t, "ra", "dec", Cone::new(185.0, 0.0, 3.0)).unwrap();
        assert_eq!(sel.rows(), &[2]);
    }

    #[test]
    fn missing_columns_error() {
        let t = positions_table(&[(1.0, 1.0)]);
        assert!(get_nearby_obj_eq(&t, "missing", "dec", Cone::new(0.0, 0.0, 1.0)).is_err());
    }

    #[test]
    fn empty_table_returns_empty_selection() {
        let t = positions_table(&[]);
        let sel = get_nearby_obj_eq(&t, "ra", "dec", Cone::new(0.0, 0.0, 1.0)).unwrap();
        assert!(sel.is_empty());
    }

    #[test]
    fn zero_radius_selects_only_exact_centre() {
        let t = positions_table(&[(10.0, 10.0), (10.0001, 10.0)]);
        let sel = get_nearby_obj_eq(&t, "ra", "dec", Cone::new(10.0, 10.0, 0.0)).unwrap();
        assert_eq!(sel.rows(), &[0]);
    }
}
