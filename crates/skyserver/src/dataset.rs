//! End-to-end synthetic warehouse construction.
//!
//! Ties the generators together: a `PhotoObjAll` fact table loaded in
//! batches (the "daily ingests" of the paper), the `field` and `photo_type`
//! dimension tables, and a catalog registering all of them. The bounded query
//! engine and the benchmark harness both start from a [`SkyDataset`].

use crate::dimensions::{generate_field_table, generate_photo_type_table};
use crate::photoobj::{PhotoObjGenerator, SkyConfig};
use sciborq_columnar::{Catalog, RecordBatch, Result, Table};
use serde::{Deserialize, Serialize};

/// Configuration for building a synthetic warehouse.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Total number of `PhotoObjAll` rows.
    pub total_objects: usize,
    /// Rows per incremental-load batch.
    pub batch_size: usize,
    /// Sky / clustering configuration.
    pub sky: SkyConfig,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            total_objects: 100_000,
            batch_size: 10_000,
            sky: SkyConfig::default(),
            seed: 42,
        }
    }
}

impl DatasetConfig {
    /// A small configuration suitable for unit/integration tests.
    pub fn small() -> Self {
        DatasetConfig {
            total_objects: 5_000,
            batch_size: 1_000,
            ..DatasetConfig::default()
        }
    }

    /// The configuration used by the Figure 7 reproduction: >600 000 fact
    /// rows (the paper reports "more than 600.000 tuples").
    pub fn figure7() -> Self {
        DatasetConfig {
            total_objects: 600_000,
            batch_size: 50_000,
            ..DatasetConfig::default()
        }
    }
}

/// A fully built synthetic warehouse.
#[derive(Debug, Clone)]
pub struct SkyDataset {
    /// Catalog holding `photoobj`, `field` and `photo_type`.
    pub catalog: Catalog,
    /// The configuration the dataset was built with.
    pub config: DatasetConfig,
    /// The batches that were loaded, in load order (kept so experiments can
    /// replay the exact same incremental loads through impression builders).
    pub load_batches: Vec<RecordBatch>,
}

impl SkyDataset {
    /// Build the warehouse: generate all batches, load them into the fact
    /// table, generate the dimension tables, and register everything.
    pub fn build(config: DatasetConfig) -> Result<Self> {
        let mut generator = PhotoObjGenerator::new(config.sky.clone(), config.seed);
        let mut fact =
            Table::with_capacity("photoobj", generator.schema().clone(), config.total_objects);
        let mut load_batches = Vec::new();
        let mut remaining = config.total_objects;
        while remaining > 0 {
            let rows = remaining.min(config.batch_size.max(1));
            let batch = generator.next_batch(rows);
            fact.append_batch(&batch)?;
            load_batches.push(batch);
            remaining -= rows;
        }

        let catalog = Catalog::new();
        catalog.register(fact)?;
        catalog.register(generate_field_table(
            config.sky.field_count,
            config.seed ^ 0x5eed,
        ))?;
        catalog.register(generate_photo_type_table())?;

        Ok(SkyDataset {
            catalog,
            config,
            load_batches,
        })
    }

    /// Build the default small dataset (unit-test sized).
    pub fn small() -> Result<Self> {
        Self::build(DatasetConfig::small())
    }

    /// Number of rows in the fact table.
    pub fn fact_rows(&self) -> usize {
        self.catalog
            .table("photoobj")
            .map(|t| t.read().row_count())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sciborq_columnar::{compute_aggregate, AggregateKind, Predicate, SelectionVector};

    #[test]
    fn small_dataset_builds_and_registers_tables() {
        let ds = SkyDataset::small().unwrap();
        assert_eq!(ds.fact_rows(), 5_000);
        assert_eq!(
            ds.catalog.table_names(),
            vec!["field", "photo_type", "photoobj"]
        );
        assert_eq!(ds.load_batches.len(), 5);
        assert!(ds.load_batches.iter().all(|b| b.row_count() == 1_000));
    }

    #[test]
    fn batch_sizes_handle_remainders() {
        let config = DatasetConfig {
            total_objects: 2_500,
            batch_size: 1_000,
            ..DatasetConfig::default()
        };
        let ds = SkyDataset::build(config).unwrap();
        assert_eq!(ds.fact_rows(), 2_500);
        let sizes: Vec<usize> = ds.load_batches.iter().map(|b| b.row_count()).collect();
        assert_eq!(sizes, vec![1_000, 1_000, 500]);
    }

    #[test]
    fn zero_batch_size_does_not_loop_forever() {
        let config = DatasetConfig {
            total_objects: 10,
            batch_size: 0,
            ..DatasetConfig::default()
        };
        let ds = SkyDataset::build(config).unwrap();
        assert_eq!(ds.fact_rows(), 10);
    }

    #[test]
    fn fact_table_fk_is_contained_in_field_dimension() {
        let ds = SkyDataset::small().unwrap();
        let fact = ds.catalog.table("photoobj").unwrap();
        let dim = ds.catalog.table("field").unwrap();
        let fact_guard = fact.read();
        let dim_guard = dim.read();
        let containment = sciborq_columnar::key_containment(
            &fact_guard,
            "field_id",
            &dim_guard,
            "field_id",
            &SelectionVector::all(fact_guard.row_count()),
        )
        .unwrap();
        assert_eq!(containment, 1.0, "every FK must resolve");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SkyDataset::build(DatasetConfig::small()).unwrap();
        let b = SkyDataset::build(DatasetConfig::small()).unwrap();
        let ta = a.catalog.table("photoobj").unwrap();
        let tb = b.catalog.table("photoobj").unwrap();
        assert_eq!(ta.read().row(100).unwrap(), tb.read().row(100).unwrap());
    }

    #[test]
    fn aggregates_over_fact_table_are_sensible() {
        let ds = SkyDataset::small().unwrap();
        let fact = ds.catalog.table("photoobj").unwrap();
        let fact = fact.read();
        let galaxies = Predicate::eq("class", "GALAXY").evaluate(&fact).unwrap();
        assert!(galaxies.len() > 2_000, "galaxies dominate the catalogue");
        let avg_mag = compute_aggregate(&fact, Some("r_mag"), AggregateKind::Avg, &galaxies)
            .unwrap()
            .value
            .unwrap();
        assert!(avg_mag > 15.0 && avg_mag < 24.0, "avg r_mag {avg_mag}");
    }

    #[test]
    fn replayed_batches_match_fact_table() {
        let ds = SkyDataset::small().unwrap();
        let total: usize = ds.load_batches.iter().map(|b| b.row_count()).sum();
        assert_eq!(total, ds.fact_rows());
        // first row of first batch equals first row of fact table
        let fact = ds.catalog.table("photoobj").unwrap();
        assert_eq!(
            ds.load_batches[0].row(0).unwrap(),
            fact.read().row(0).unwrap()
        );
    }
}
