//! Shared setup helpers for experiments and benches.

use sciborq_skyserver::{DatasetConfig, SkyDataset};
use sciborq_workload::{AttributeDomain, PredicateSet, WorkloadGenerator};

/// The scale an experiment runs at. `Paper` mirrors the sizes reported in
/// the paper (e.g. >600k tuples for Figure 7); `Quick` shrinks everything so
/// the full suite runs in seconds (used by tests and smoke runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-sized experiments (hundreds of thousands of tuples).
    Paper,
    /// Small, fast versions of the same experiments.
    Quick,
}

impl Scale {
    /// Number of fact-table rows to generate.
    pub fn fact_rows(&self) -> usize {
        match self {
            Scale::Paper => 600_000,
            Scale::Quick => 30_000,
        }
    }

    /// Impression size used by the Figure 7 style comparisons.
    pub fn impression_rows(&self) -> usize {
        match self {
            Scale::Paper => 10_000,
            Scale::Quick => 1_000,
        }
    }

    /// Number of logged workload queries (the paper's Figure 4 uses 400
    /// predicate values ≈ 130 cone searches; we log queries until ~400
    /// values per attribute are collected).
    pub fn workload_queries(&self) -> usize {
        match self {
            Scale::Paper => 140,
            Scale::Quick => 60,
        }
    }

    /// Parse from a CLI flag. Returns `None` for an unrecognised flag, so a
    /// typo of `--quick` cannot silently run the full paper-scale suite.
    pub fn parse(arg: Option<&str>) -> Option<Scale> {
        match arg {
            Some("--quick") | Some("quick") => Some(Scale::Quick),
            Some("--paper") | Some("paper") => Some(Scale::Paper),
            None => Some(Scale::Paper),
            Some(_) => None,
        }
    }
}

/// Build the synthetic warehouse used by the experiments.
pub fn build_dataset(scale: Scale) -> SkyDataset {
    SkyDataset::build(DatasetConfig {
        total_objects: scale.fact_rows(),
        batch_size: (scale.fact_rows() / 10).max(1),
        ..DatasetConfig::default()
    })
    .expect("synthetic warehouse builds")
}

/// A predicate set over `ra`/`dec` fed by the default SkyServer-like
/// workload, with raw values retained so the full KDE f̂ can be computed.
pub fn build_predicate_set(scale: Scale, seed: u64) -> PredicateSet {
    let mut ps = PredicateSet::new(&[
        ("ra", AttributeDomain::new(0.0, 360.0, 24)),
        ("dec", AttributeDomain::new(-90.0, 90.0, 24)),
    ])
    .expect("predicate set")
    .with_raw_values();
    let mut generator = WorkloadGenerator::default_sky(seed);
    for query in generator.generate(scale.workload_queries()) {
        ps.log_query(&query);
    }
    ps
}

/// Render a simple text histogram (used to print Figure 4/7 style series).
pub fn render_histogram(label: &str, counts: &[u64]) -> String {
    let max = counts.iter().copied().max().unwrap_or(0).max(1);
    let mut out = String::new();
    out.push_str(&format!("{label}\n"));
    for (i, &c) in counts.iter().enumerate() {
        let bar_len = (c as f64 / max as f64 * 50.0).round() as usize;
        out.push_str(&format!("  bin {i:>3} | {:<50} {c}\n", "#".repeat(bar_len)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_and_sizes() {
        assert_eq!(Scale::parse(Some("--quick")), Some(Scale::Quick));
        assert_eq!(Scale::parse(Some("quick")), Some(Scale::Quick));
        assert_eq!(Scale::parse(Some("--paper")), Some(Scale::Paper));
        assert_eq!(Scale::parse(None), Some(Scale::Paper));
        assert_eq!(Scale::parse(Some("whatever")), None);
        assert!(Scale::Paper.fact_rows() > Scale::Quick.fact_rows());
        assert!(Scale::Paper.impression_rows() > Scale::Quick.impression_rows());
        assert!(Scale::Quick.workload_queries() > 0);
    }

    #[test]
    fn quick_dataset_builds() {
        let ds = build_dataset(Scale::Quick);
        assert_eq!(ds.fact_rows(), Scale::Quick.fact_rows());
    }

    #[test]
    fn predicate_set_collects_values() {
        let ps = build_predicate_set(Scale::Quick, 1);
        assert!(ps.observed_values("ra") > 50);
        assert!(ps.observed_values("dec") > 50);
        assert!(ps.raw_values("ra").is_some());
    }

    #[test]
    fn histogram_rendering() {
        let s = render_histogram("test", &[1, 5, 10]);
        assert!(s.contains("bin   0"));
        assert!(s.contains("10"));
        let empty = render_histogram("empty", &[]);
        assert!(empty.contains("empty"));
    }
}
