//! Reproductions of every figure of the paper plus the quantitative claims
//! made in the text (see DESIGN.md §3 for the experiment index).
//!
//! Each function prints a human-readable report and returns a small summary
//! struct so that tests (and EXPERIMENTS.md) can check the *shape* of the
//! result: who wins, by roughly what factor, and where the crossovers fall.

use crate::setup::{build_dataset, build_predicate_set, render_histogram, Scale};
use sciborq_columnar::Table;
use sciborq_core::{
    BoundedQueryEngine, EvaluationLevel, LayerHierarchy, QueryBounds, SamplingPolicy, SciborqConfig,
};
use sciborq_sampling::{BiasedReservoir, LastSeenReservoir, Reservoir, SamplingStrategy};
use sciborq_skyserver::Cone;
use sciborq_stats::{
    mean_absolute_deviation, silverman_bandwidth, BinnedKde, EquiWidthHistogram, FullKde, Kernel,
};
use sciborq_workload::Query;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Figure 4 — predicate-set histograms and density estimators
// ---------------------------------------------------------------------------

/// Per-attribute outcome of the Figure 4 reproduction.
#[derive(Debug, Clone)]
pub struct Fig4Attribute {
    /// Attribute name (`ra` / `dec`).
    pub attribute: String,
    /// Number of logged predicate values (N).
    pub observed: u64,
    /// Mean absolute deviation of the binned f̆ from the reference f̂.
    pub binned_deviation: f64,
    /// Mean absolute deviation of the oversmoothed estimate from f̂.
    pub oversmoothed_deviation: f64,
    /// Mean absolute deviation of the undersmoothed estimate from f̂.
    pub undersmoothed_deviation: f64,
    /// ∫ f̆ over the domain (should be ≈ 1).
    pub binned_integral: f64,
}

/// Summary of the Figure 4 reproduction.
#[derive(Debug, Clone)]
pub struct Fig4Summary {
    /// One entry per tracked attribute.
    pub attributes: Vec<Fig4Attribute>,
}

/// Figure 4: the workload's predicate-set histograms for `ra` and `dec`
/// together with the full KDE f̂ (reference bandwidth), deliberately over-
/// and under-smoothed variants, and the paper's binned estimator f̆.
pub fn figure4(scale: Scale) -> Fig4Summary {
    println!("== Figure 4: predicate-set density estimation (f̂ vs f̆) ==");
    let ps = build_predicate_set(scale, 4);
    let mut attributes = Vec::new();
    for (attribute, lo, hi) in [("ra", 0.0f64, 360.0f64), ("dec", -90.0, 90.0)] {
        let raw = ps
            .raw_values(attribute)
            .expect("raw predicate values retained")
            .to_vec();
        let hist = ps.histogram(attribute).expect("histogram exists");
        println!(
            "\n-- attribute {attribute}: N = {} logged predicate values, β = {} bins --",
            hist.total(),
            hist.bin_count()
        );
        print!(
            "{}",
            render_histogram("predicate-set histogram", &hist.counts())
        );

        let h = silverman_bandwidth(&raw).expect("bandwidth");
        let reference = FullKde::new(raw.clone(), h, Kernel::Gaussian).expect("f̂");
        let oversmoothed = FullKde::new(raw.clone(), h * 5.0, Kernel::Gaussian).expect("f̂ over");
        let undersmoothed = FullKde::new(raw.clone(), h * 0.2, Kernel::Gaussian).expect("f̂ under");
        let binned = BinnedKde::from_histogram(hist).expect("f̆");

        let binned_dev =
            mean_absolute_deviation(|x| reference.density(x), |x| binned.density(x), lo, hi, 400);
        let over_dev = mean_absolute_deviation(
            |x| reference.density(x),
            |x| oversmoothed.density(x),
            lo,
            hi,
            400,
        );
        let under_dev = mean_absolute_deviation(
            |x| reference.density(x),
            |x| undersmoothed.density(x),
            lo,
            hi,
            400,
        );
        let integral =
            sciborq_stats::integrate_density(|x| binned.density(x), lo - 50.0, hi + 50.0, 4000);

        println!("  bandwidth h* (Silverman)          : {h:.4}");
        println!("  MAD(f̆, f̂)  [binned, h = w]        : {binned_dev:.6}");
        println!("  MAD(oversmoothed 5h*, f̂)          : {over_dev:.6}");
        println!("  MAD(undersmoothed 0.2h*, f̂)       : {under_dev:.6}");
        println!("  ∫ f̆ dx                            : {integral:.4}");
        attributes.push(Fig4Attribute {
            attribute: attribute.to_owned(),
            observed: hist.total(),
            binned_deviation: binned_dev,
            oversmoothed_deviation: over_dev,
            undersmoothed_deviation: under_dev,
            binned_integral: integral,
        });
    }
    println!(
        "\nshape check: f̆ should track f̂ much more closely than the over/under-smoothed curves."
    );
    Fig4Summary { attributes }
}

// ---------------------------------------------------------------------------
// Figure 5 — streaming histogram maintenance
// ---------------------------------------------------------------------------

/// Summary of the Figure 5 reproduction.
#[derive(Debug, Clone)]
pub struct Fig5Summary {
    /// Largest absolute difference between a streaming bin mean and the
    /// exactly recomputed bin mean, over all β configurations.
    pub max_mean_error: f64,
    /// Whether every bin count matched exactly.
    pub counts_exact: bool,
}

/// Figure 5: the O(1)-per-value maintenance of per-bin (count, mean)
/// statistics reproduces the exact statistics for every bin width tried.
pub fn figure5(scale: Scale) -> Fig5Summary {
    println!("== Figure 5: streaming predicate-set histogram maintenance ==");
    let ps = build_predicate_set(scale, 5);
    let raw = ps.raw_values("ra").expect("raw values").to_vec();
    let mut max_mean_error: f64 = 0.0;
    let mut counts_exact = true;
    for beta in [8usize, 16, 24, 48] {
        let mut streaming = EquiWidthHistogram::new(0.0, 360.0, beta).expect("histogram");
        streaming.observe_all(&raw);
        // exact recomputation per bin
        let mut exact_counts = vec![0u64; beta];
        let mut exact_sums = vec![0.0f64; beta];
        for &v in &raw {
            let idx = streaming.bin_index(v);
            exact_counts[idx] += 1;
            exact_sums[idx] += v;
        }
        let mut worst = 0.0f64;
        for (i, bin) in streaming.bins().iter().enumerate() {
            if bin.count != exact_counts[i] {
                counts_exact = false;
            }
            if exact_counts[i] > 0 {
                let exact_mean = exact_sums[i] / exact_counts[i] as f64;
                worst = worst.max((bin.mean - exact_mean).abs());
            }
        }
        max_mean_error = max_mean_error.max(worst);
        println!(
            "  β = {beta:>3}: {} values, max |streaming mean − exact mean| = {worst:.2e}",
            streaming.total()
        );
    }
    Fig5Summary {
        max_mean_error,
        counts_exact,
    }
}

// ---------------------------------------------------------------------------
// Figure 6 — the biased reservoir acceptance rule
// ---------------------------------------------------------------------------

/// Summary of the Figure 6 reproduction.
#[derive(Debug, Clone)]
pub struct Fig6Summary {
    /// Acceptance probability of a focal tuple late in the stream.
    pub focal_acceptance: f64,
    /// Acceptance probability of a background tuple late in the stream.
    pub background_acceptance: f64,
    /// Ratio of focal to background tuples retained, divided by the base
    /// ratio (the enrichment factor of the reservoir itself).
    pub enrichment: f64,
}

/// Figure 6: the biased reservoir accepts tuples with probability
/// `f̆(t)·N·n/cnt` and therefore enriches the focal region.
pub fn figure6(scale: Scale) -> Fig6Summary {
    println!("== Figure 6: biased-sampling reservoir acceptance rule ==");
    let ps = build_predicate_set(scale, 6);
    let kde = ps.interest_estimator("ra").expect("interest estimator");
    let dataset = build_dataset(scale);
    let fact = dataset.catalog.table("photoobj").expect("fact");
    let fact = fact.read();
    let ra = fact.column("ra").expect("ra column");

    let capacity = scale.impression_rows();
    let mut reservoir = BiasedReservoir::new(capacity, 6).expect("reservoir");
    for i in 0..fact.row_count() {
        let value = ra.get_f64(i).unwrap_or(0.0);
        reservoir.observe_weighted(i, kde.interest_weight(value));
    }
    let focal_w = kde.interest_weight(185.0);
    let background_w = kde.interest_weight(90.0);
    let focal_acceptance = reservoir.acceptance_probability(focal_w);
    let background_acceptance = reservoir.acceptance_probability(background_w);

    // enrichment of the focal window [180, 190] relative to the base data
    let in_focus = |v: f64| (180.0..=190.0).contains(&v);
    let base_share = (0..fact.row_count())
        .filter_map(|i| ra.get_f64(i))
        .filter(|&v| in_focus(v))
        .count() as f64
        / fact.row_count() as f64;
    let sample_share = reservoir
        .sample()
        .iter()
        .filter(|s| ra.get_f64(s.item).map(in_focus).unwrap_or(false))
        .count() as f64
        / reservoir.len() as f64;
    let enrichment = sample_share / base_share.max(1e-9);

    println!("  interest weight  f̆(185°)·N = {focal_w:.2}, f̆(90°)·N = {background_w:.2}");
    println!(
        "  acceptance probability (late in stream): focal {focal_acceptance:.4} vs background {background_acceptance:.6}"
    );
    println!(
        "  focal-window share: base {base_share:.3} → biased sample {sample_share:.3} (enrichment ×{enrichment:.1})"
    );
    Fig6Summary {
        focal_acceptance,
        background_acceptance,
        enrichment,
    }
}

// ---------------------------------------------------------------------------
// Figure 7 — base data vs uniform sample vs biased sample
// ---------------------------------------------------------------------------

/// Per-attribute outcome of the Figure 7 reproduction.
#[derive(Debug, Clone)]
pub struct Fig7Attribute {
    /// Attribute name.
    pub attribute: String,
    /// Share of base tuples inside the workload's focal regions.
    pub base_focal_share: f64,
    /// Share of the uniform impression inside the focal regions.
    pub uniform_focal_share: f64,
    /// Share of the biased impression inside the focal regions.
    pub biased_focal_share: f64,
}

impl Fig7Attribute {
    /// Enrichment of the biased impression relative to the uniform one.
    pub fn enrichment_vs_uniform(&self) -> f64 {
        self.biased_focal_share / self.uniform_focal_share.max(1e-9)
    }
}

/// Summary of the Figure 7 reproduction.
#[derive(Debug, Clone)]
pub struct Fig7Summary {
    /// One entry per attribute (`ra`, `dec`).
    pub attributes: Vec<Fig7Attribute>,
}

/// Figure 7: distributions of the base data (>600k tuples at paper scale),
/// a 10 000-tuple uniform impression, and a 10 000-tuple biased impression
/// steered by the Figure 4 workload, for `ra` and `dec`.
pub fn figure7(scale: Scale) -> Fig7Summary {
    println!("== Figure 7: base data vs uniform vs biased impression ==");
    let ps = build_predicate_set(scale, 4);
    let dataset = build_dataset(scale);
    let fact = dataset.catalog.table("photoobj").expect("fact");
    let fact = fact.read();
    println!(
        "base data: {} tuples; impression size n = {}",
        fact.row_count(),
        scale.impression_rows()
    );

    let config = SciborqConfig::with_layers(vec![scale.impression_rows()]);
    let uniform =
        LayerHierarchy::build_from_table(&fact, SamplingPolicy::Uniform, &config, Some(&ps))
            .expect("uniform hierarchy");
    let biased = LayerHierarchy::build_from_table(
        &fact,
        SamplingPolicy::biased(["ra", "dec"]),
        &config,
        Some(&ps),
    )
    .expect("biased hierarchy");
    let uniform = &uniform.layers()[0];
    let biased = &biased.layers()[0];

    let mut attributes = Vec::new();
    for (attribute, lo, hi) in [("ra", 0.0f64, 360.0f64), ("dec", -90.0, 90.0)] {
        println!("\n-- attribute {attribute} --");
        let collect = |table: &Table| -> Vec<f64> {
            let col = table.column(attribute).expect("column");
            (0..table.row_count())
                .filter_map(|i| col.get_f64(i))
                .collect()
        };
        let base_values = collect(&fact);
        let uniform_values = collect(uniform.data());
        let biased_values = collect(biased.data());

        let mut base_hist = EquiWidthHistogram::new(lo, hi, 24).expect("hist");
        base_hist.observe_all(&base_values);
        let mut uniform_hist = EquiWidthHistogram::new(lo, hi, 24).expect("hist");
        uniform_hist.observe_all(&uniform_values);
        let mut biased_hist = EquiWidthHistogram::new(lo, hi, 24).expect("hist");
        biased_hist.observe_all(&biased_values);

        print!("{}", render_histogram("base data", &base_hist.counts()));
        print!(
            "{}",
            render_histogram("uniform impression", &uniform_hist.counts())
        );
        print!(
            "{}",
            render_histogram("biased impression", &biased_hist.counts())
        );

        // focal regions from the workload histogram
        let workload_hist = ps.histogram(attribute).expect("workload histogram");
        let regions = sciborq_workload::extract_focal_regions(attribute, workload_hist, 2.0);
        let share = |values: &[f64]| {
            if values.is_empty() {
                return 0.0;
            }
            values
                .iter()
                .filter(|v| regions.iter().any(|r| r.contains(**v)))
                .count() as f64
                / values.len() as f64
        };
        let row = Fig7Attribute {
            attribute: attribute.to_owned(),
            base_focal_share: share(&base_values),
            uniform_focal_share: share(&uniform_values),
            biased_focal_share: share(&biased_values),
        };
        println!(
            "focal-region share: base {:.3} | uniform {:.3} | biased {:.3}  (biased/uniform ×{:.2})",
            row.base_focal_share,
            row.uniform_focal_share,
            row.biased_focal_share,
            row.enrichment_vs_uniform()
        );
        attributes.push(row);
    }
    println!("\nshape check: the biased impression holds many more tuples around the focal points, the uniform one mirrors the base distribution.");
    Fig7Summary { attributes }
}

// ---------------------------------------------------------------------------
// E3 — Algorithm R uniformity (Figure 2)
// ---------------------------------------------------------------------------

/// Summary of the reservoir-uniformity experiment.
#[derive(Debug, Clone)]
pub struct ReservoirSummary {
    /// Worst per-decile deviation from the expected inclusion share (10%).
    pub max_decile_deviation: f64,
}

/// Figure 2 / E3: Algorithm R retains every prefix position with equal
/// probability — the per-decile composition of the reservoir stays ≈ 10%.
pub fn reservoir_uniformity(scale: Scale) -> ReservoirSummary {
    println!("== Figure 2 / E3: Algorithm R uniformity ==");
    let stream = scale.fact_rows() as u64;
    let mut max_dev = 0.0f64;
    for capacity in [1_000usize, 10_000] {
        let capacity = capacity.min(stream as usize / 2);
        let mut reservoir = Reservoir::new(capacity, 3);
        for i in 0..stream {
            reservoir.observe(i);
        }
        let mut deciles = [0usize; 10];
        for item in reservoir.sample() {
            deciles[(item.item * 10 / stream) as usize] += 1;
        }
        print!("  n = {capacity:>6}: decile shares");
        for d in deciles {
            let share = d as f64 / capacity as f64;
            max_dev = max_dev.max((share - 0.1).abs());
            print!(" {share:.3}");
        }
        println!();
    }
    println!("  (each share should be ≈ 0.100)");
    ReservoirSummary {
        max_decile_deviation: max_dev,
    }
}

// ---------------------------------------------------------------------------
// E4 — Last-Seen recency bias (Figure 3)
// ---------------------------------------------------------------------------

/// One row of the Last-Seen experiment.
#[derive(Debug, Clone)]
pub struct LastSeenRow {
    /// The `k/n` ratio used.
    pub fresh_fraction: f64,
    /// Fraction of the reservoir coming from the last ingest window.
    pub recent_share: f64,
}

/// Summary of the Last-Seen experiment.
#[derive(Debug, Clone)]
pub struct LastSeenSummary {
    /// One row per `k/n` setting, plus the uniform baseline share.
    pub rows: Vec<LastSeenRow>,
    /// The uniform reservoir's share of recent tuples (baseline).
    pub uniform_recent_share: f64,
}

/// Figure 3 / E4: the Last-Seen strategy retains recent tuples with a fixed
/// probability `k/D`, so the share of the latest ingest in the reservoir
/// grows with `k/n`, far beyond the uniform baseline.
pub fn last_seen_bias(scale: Scale) -> LastSeenSummary {
    println!("== Figure 3 / E4: Last-Seen impressions ==");
    let stream = scale.fact_rows() as u64;
    let daily = (stream / 10).max(1) as f64; // ten "days" of ingest
    let capacity = scale.impression_rows();
    let window_start = stream - daily as u64;

    let recent_share = |items: &[sciborq_sampling::SampledItem<u64>]| {
        items.iter().filter(|s| s.item >= window_start).count() as f64 / items.len() as f64
    };

    let mut uniform = Reservoir::new(capacity, 9);
    for i in 0..stream {
        uniform.observe(i);
    }
    let uniform_share = recent_share(uniform.sample());
    println!("  uniform baseline: {uniform_share:.3} of the reservoir is from the last ingest");

    let mut rows = Vec::new();
    for fresh_fraction in [0.25f64, 0.5, 1.0] {
        let k = fresh_fraction * capacity as f64;
        let mut reservoir = LastSeenReservoir::new(capacity, k, daily, 9).expect("last-seen");
        for i in 0..stream {
            reservoir.observe(i);
        }
        let share = recent_share(reservoir.sample());
        println!(
            "  k/n = {fresh_fraction:>4.2} (k/D = {:.3}): recent share {share:.3}",
            k / daily
        );
        rows.push(LastSeenRow {
            fresh_fraction,
            recent_share: share,
        });
    }
    LastSeenSummary {
        rows,
        uniform_recent_share: uniform_share,
    }
}

// ---------------------------------------------------------------------------
// E7 — error bounds vs impression size
// ---------------------------------------------------------------------------

/// One row of the error-vs-size experiment.
#[derive(Debug, Clone)]
pub struct BoundsRow {
    /// Impression size in rows.
    pub impression_rows: usize,
    /// Mean observed relative error of the COUNT estimate vs ground truth.
    pub mean_observed_error: f64,
    /// Mean predicted relative half-width of the 95% CI.
    pub mean_predicted_error: f64,
    /// Fraction of repetitions whose CI covered the true value.
    pub coverage: f64,
}

/// Summary of the error-vs-size experiment.
#[derive(Debug, Clone)]
pub struct BoundsSummary {
    /// One row per impression size, ascending.
    pub rows: Vec<BoundsRow>,
}

/// E7: "the larger the impression, the longer the processing time and the
/// smaller the error bounds" — observed and predicted error of a cone-search
/// COUNT as a function of impression size, with CI coverage.
pub fn error_vs_size(scale: Scale) -> BoundsSummary {
    println!("== E7: error bounds vs impression size ==");
    let dataset = build_dataset(scale);
    let fact = dataset.catalog.table("photoobj").expect("fact");
    let fact = fact.read();
    let cone = Cone::new(185.0, 0.0, 5.0);
    let predicate = cone.bounding_box_predicate("ra", "dec");
    let truth = predicate.evaluate(&fact).expect("truth").len() as f64;
    println!("ground-truth COUNT = {truth}");
    println!(
        "{:>12} {:>16} {:>16} {:>10}",
        "size", "observed error", "predicted error", "coverage"
    );

    let sizes: Vec<usize> = match scale {
        Scale::Paper => vec![1_000, 3_000, 10_000, 30_000, 100_000],
        Scale::Quick => vec![300, 1_000, 3_000],
    };
    let repetitions = match scale {
        Scale::Paper => 5,
        Scale::Quick => 3,
    };
    let engine = BoundedQueryEngine::new(SciborqConfig::default()).expect("engine");
    let query = Query::count("photoobj", predicate.clone());

    let mut rows = Vec::new();
    for &size in &sizes {
        let mut observed = Vec::new();
        let mut predicted = Vec::new();
        let mut covered = 0usize;
        for rep in 0..repetitions {
            let mut config = SciborqConfig::with_layers(vec![size]);
            config.seed = 1_000 + rep as u64;
            let hierarchy =
                LayerHierarchy::build_from_table(&fact, SamplingPolicy::Uniform, &config, None)
                    .expect("hierarchy");
            let answer = engine
                .execute_aggregate(&query, &hierarchy, None, &QueryBounds::default())
                .expect("bounded query");
            let estimate = answer.value.unwrap_or(0.0);
            observed.push((estimate - truth).abs() / truth);
            predicted.push(answer.relative_error());
            if answer.interval.map(|ci| ci.covers(truth)).unwrap_or(false) {
                covered += 1;
            }
        }
        let row = BoundsRow {
            impression_rows: size,
            mean_observed_error: observed.iter().sum::<f64>() / observed.len() as f64,
            mean_predicted_error: predicted.iter().sum::<f64>() / predicted.len() as f64,
            coverage: covered as f64 / repetitions as f64,
        };
        println!(
            "{:>12} {:>16.4} {:>16.4} {:>10.2}",
            row.impression_rows, row.mean_observed_error, row.mean_predicted_error, row.coverage
        );
        rows.push(row);
    }
    println!(
        "shape check: both error columns shrink monotonically (≈ 1/√n) as the impression grows."
    );
    BoundsSummary { rows }
}

// ---------------------------------------------------------------------------
// E8 — escalation across layers for different error targets
// ---------------------------------------------------------------------------

/// One row of the escalation experiment.
#[derive(Debug, Clone)]
pub struct EscalationRow {
    /// The requested maximum relative error.
    pub max_error: f64,
    /// Average number of escalations per query.
    pub mean_escalations: f64,
    /// Average measured rows scanned per query (summed over all levels the
    /// engine visited).
    pub mean_rows_scanned: f64,
    /// Fraction of queries that ended on the base data.
    pub base_data_fraction: f64,
    /// Fraction of queries whose error bound was met.
    pub satisfied_fraction: f64,
}

/// Summary of the escalation experiment.
#[derive(Debug, Clone)]
pub struct EscalationSummary {
    /// One row per error target, from loose to tight.
    pub rows: Vec<EscalationRow>,
}

/// E8: queries that miss their error target fall through to more detailed
/// impressions and ultimately the base columns (§3.2 "Quality of results").
pub fn escalation(scale: Scale) -> EscalationSummary {
    println!("== E8: multi-layer escalation vs error target ==");
    let dataset = build_dataset(scale);
    let fact = dataset.catalog.table("photoobj").expect("fact");
    let fact = fact.read();
    let layers = match scale {
        Scale::Paper => vec![100_000, 10_000, 1_000],
        Scale::Quick => vec![10_000, 1_000, 100],
    };
    let config = SciborqConfig::with_layers(layers);
    let hierarchy = LayerHierarchy::build_from_table(&fact, SamplingPolicy::Uniform, &config, None)
        .expect("hierarchy");
    let engine = BoundedQueryEngine::new(config).expect("engine");

    // a mixed bag of cone searches with varying selectivity
    let mut generator = sciborq_workload::WorkloadGenerator::default_sky(8);
    let queries: Vec<Query> = generator
        .generate(40)
        .into_iter()
        .map(|q| Query::count("photoobj", q.predicate))
        .collect();

    println!(
        "{:>12} {:>18} {:>16} {:>20} {:>18}",
        "max error", "mean escalations", "rows scanned", "base-data fraction", "bound satisfied"
    );
    let mut rows = Vec::new();
    for max_error in [0.10f64, 0.05, 0.01] {
        let mut escalations = 0usize;
        let mut rows_scanned = 0u64;
        let mut base_hits = 0usize;
        let mut satisfied = 0usize;
        for query in &queries {
            let answer = engine
                .execute_aggregate(
                    query,
                    &hierarchy,
                    Some(&fact),
                    &QueryBounds::max_error(max_error),
                )
                .expect("bounded query");
            escalations += answer.escalations;
            rows_scanned += answer.rows_scanned;
            if answer.level == EvaluationLevel::BaseData {
                base_hits += 1;
            }
            if answer.error_bound_met {
                satisfied += 1;
            }
        }
        let row = EscalationRow {
            max_error,
            mean_escalations: escalations as f64 / queries.len() as f64,
            mean_rows_scanned: rows_scanned as f64 / queries.len() as f64,
            base_data_fraction: base_hits as f64 / queries.len() as f64,
            satisfied_fraction: satisfied as f64 / queries.len() as f64,
        };
        println!(
            "{:>12.2} {:>18.2} {:>16.0} {:>20.2} {:>18.2}",
            row.max_error,
            row.mean_escalations,
            row.mean_rows_scanned,
            row.base_data_fraction,
            row.satisfied_fraction
        );
        rows.push(row);
    }
    println!("shape check: tighter targets force more escalations and more base-data visits, while every bound is ultimately satisfied.");
    EscalationSummary { rows }
}

// ---------------------------------------------------------------------------
// E9 — adaptation to a workload shift
// ---------------------------------------------------------------------------

/// Summary of the adaptation experiment.
#[derive(Debug, Clone)]
pub struct AdaptSummary {
    /// Focal share of the new region before adaptation.
    pub before_share: f64,
    /// Focal share of the new region after adaptation.
    pub after_share: f64,
    /// The measured workload shift that triggered the rebuild.
    pub shift: f64,
}

/// E9: when the exploration focus moves, maintenance detects the shift and
/// the rebuilt impressions enrich the new region.
pub fn adaptation(scale: Scale) -> AdaptSummary {
    println!("== E9: adaptation to a shifting focal point ==");
    let dataset = build_dataset(scale);
    let config =
        SciborqConfig::with_layers(vec![scale.impression_rows(), scale.impression_rows() / 10]);
    let session = sciborq_core::ExplorationSession::new(
        dataset.catalog.clone(),
        config,
        &[
            ("ra", sciborq_workload::AttributeDomain::new(0.0, 360.0, 72)),
            (
                "dec",
                sciborq_workload::AttributeDomain::new(-90.0, 90.0, 36),
            ),
        ],
    )
    .expect("session");
    session
        .create_impressions("photoobj", SamplingPolicy::Uniform)
        .expect("bootstrap");

    let phase = |center_ra: f64, center_dec: f64| sciborq_workload::WorkloadConfig {
        clusters: vec![sciborq_workload::FocalCluster::new(
            center_ra, center_dec, 2.0, 1.0,
        )],
        background_fraction: 0.05,
        ..sciborq_workload::WorkloadConfig::default()
    };

    // Phase 1 workload: focus on (185, 0); build biased impressions for it.
    let mut generator = sciborq_workload::WorkloadGenerator::new(phase(185.0, 0.0), 31);
    for query in generator.generate(150) {
        let _ = session.execute(&query, &QueryBounds::default());
    }
    session
        .create_impressions("photoobj", SamplingPolicy::biased(["ra", "dec"]))
        .expect("biased impressions");

    let new_region = Cone::new(230.0, 45.0, 5.0).bounding_box_predicate("ra", "dec");
    let share = |session: &sciborq_core::ExplorationSession| {
        let hierarchy = session.hierarchy("photoobj").unwrap();
        let layer = &hierarchy.layers()[0];
        new_region.evaluate(layer.data()).unwrap().len() as f64 / layer.row_count() as f64
    };
    let before_share = share(&session);

    // Phase 2 workload: focus moves to (230, 45).
    let mut generator = sciborq_workload::WorkloadGenerator::new(phase(230.0, 45.0), 32);
    for query in generator.generate(250) {
        let _ = session.execute(&query, &QueryBounds::default());
    }
    let decision = session.adapt().expect("maintenance");
    let after_share = share(&session);
    println!(
        "  workload shift measured : {:.2} (rebuild = {})",
        decision.max_shift, decision.should_rebuild
    );
    println!("  new-region share before : {before_share:.4}");
    println!("  new-region share after  : {after_share:.4}");
    println!("shape check: the share of the newly interesting region grows after adaptation.");
    AdaptSummary {
        before_share,
        after_share,
        shift: decision.max_shift,
    }
}

// ---------------------------------------------------------------------------
// E10 — runtime vs impression size
// ---------------------------------------------------------------------------

/// One row of the runtime experiment.
#[derive(Debug, Clone)]
pub struct RuntimeRow {
    /// Rows available at this level (impression size or base size).
    pub rows: usize,
    /// Measured row positions the scan kernels actually visited while
    /// answering (candidate refinement makes this less than
    /// `columns × rows` for conjunctive predicates).
    pub rows_scanned: u64,
    /// Number of levels the engine evaluated for the answer.
    pub levels_visited: usize,
    /// Mean query latency in microseconds.
    pub latency_us: f64,
    /// Observed relative error of the COUNT estimate.
    pub relative_error: f64,
}

/// Summary of the runtime experiment.
#[derive(Debug, Clone)]
pub struct RuntimeSummary {
    /// One row per level, ascending in size; the last row is the base scan.
    pub rows: Vec<RuntimeRow>,
}

/// E10: query latency grows with the impression size while the error
/// shrinks; the full base scan anchors the right-hand end of the trade-off.
pub fn runtime_vs_size(scale: Scale) -> RuntimeSummary {
    println!("== E10: runtime vs impression size ==");
    let dataset = build_dataset(scale);
    let fact = dataset.catalog.table("photoobj").expect("fact");
    let fact = fact.read();
    let cone = Cone::new(185.0, 0.0, 5.0);
    let predicate = cone.bounding_box_predicate("ra", "dec");
    let truth = predicate.evaluate(&fact).expect("truth").len() as f64;
    let query = Query::count("photoobj", predicate.clone());
    let engine = BoundedQueryEngine::new(SciborqConfig::default()).expect("engine");

    let sizes: Vec<usize> = match scale {
        Scale::Paper => vec![1_000, 10_000, 100_000],
        Scale::Quick => vec![300, 3_000],
    };
    let iterations = match scale {
        Scale::Paper => 20,
        Scale::Quick => 5,
    };

    println!(
        "{:>12} {:>14} {:>14} {:>8} {:>16}",
        "rows", "rows scanned", "latency (µs)", "levels", "relative error"
    );
    let mut rows = Vec::new();
    for &size in &sizes {
        let config = SciborqConfig::with_layers(vec![size]);
        let hierarchy =
            LayerHierarchy::build_from_table(&fact, SamplingPolicy::Uniform, &config, None)
                .expect("hierarchy");
        let mut elapsed = 0.0;
        let mut answer_value = 0.0;
        let mut rows_scanned = 0u64;
        let mut levels_visited = 0usize;
        for _ in 0..iterations {
            let started = Instant::now();
            let answer = engine
                .execute_aggregate(&query, &hierarchy, None, &QueryBounds::default())
                .expect("query");
            elapsed += started.elapsed().as_secs_f64() * 1e6;
            answer_value = answer.value.unwrap_or(0.0);
            rows_scanned = answer.rows_scanned;
            levels_visited = answer.levels_visited();
        }
        let row = RuntimeRow {
            rows: size,
            rows_scanned,
            levels_visited,
            latency_us: elapsed / iterations as f64,
            relative_error: (answer_value - truth).abs() / truth.max(1.0),
        };
        println!(
            "{:>12} {:>14} {:>14.1} {:>8} {:>16.4}",
            row.rows, row.rows_scanned, row.latency_us, row.levels_visited, row.relative_error
        );
        rows.push(row);
    }

    // full base scan for reference, through the compiled pipeline so the
    // scan work is measured the same way as the engine's
    let compiled =
        sciborq_columnar::CompiledPredicate::compile(&predicate, fact.schema()).expect("compiles");
    let mut elapsed = 0.0;
    let mut base_scanned = 0u64;
    for _ in 0..iterations {
        let started = Instant::now();
        let (_, stats) = compiled.count_matches(&fact).expect("scan");
        elapsed += started.elapsed().as_secs_f64() * 1e6;
        base_scanned = stats.rows_visited;
    }
    let base_row = RuntimeRow {
        rows: fact.row_count(),
        rows_scanned: base_scanned,
        levels_visited: 1,
        latency_us: elapsed / iterations as f64,
        relative_error: 0.0,
    };
    println!(
        "{:>12} {:>14} {:>14.1} {:>8} {:>16.4}   (full base scan)",
        base_row.rows,
        base_row.rows_scanned,
        base_row.latency_us,
        base_row.levels_visited,
        base_row.relative_error
    );
    rows.push(base_row);
    println!(
        "shape check: latency grows roughly linearly with the rows scanned; error falls towards 0."
    );
    RuntimeSummary { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_shape_holds_at_quick_scale() {
        let summary = figure4(Scale::Quick);
        assert_eq!(summary.attributes.len(), 2);
        for attr in &summary.attributes {
            assert!(attr.observed > 0);
            assert!(
                attr.binned_deviation < attr.oversmoothed_deviation,
                "{}: f̆ must beat oversmoothing",
                attr.attribute
            );
            assert!((attr.binned_integral - 1.0).abs() < 0.05);
        }
    }

    #[test]
    fn figure5_streaming_histograms_match_exact() {
        let summary = figure5(Scale::Quick);
        assert!(summary.counts_exact);
        assert!(summary.max_mean_error < 1e-9);
    }

    #[test]
    fn figure6_biased_reservoir_enriches() {
        let summary = figure6(Scale::Quick);
        assert!(summary.focal_acceptance > summary.background_acceptance);
        assert!(
            summary.enrichment > 1.2,
            "enrichment {}",
            summary.enrichment
        );
    }

    #[test]
    fn figure7_biased_beats_uniform_on_focal_share() {
        let summary = figure7(Scale::Quick);
        assert_eq!(summary.attributes.len(), 2);
        // the headline claim of the figure, at least on ra
        let ra = &summary.attributes[0];
        assert!(
            ra.biased_focal_share > ra.uniform_focal_share,
            "ra: biased {} vs uniform {}",
            ra.biased_focal_share,
            ra.uniform_focal_share
        );
    }

    #[test]
    fn reservoir_uniformity_is_flat() {
        let summary = reservoir_uniformity(Scale::Quick);
        assert!(summary.max_decile_deviation < 0.05);
    }

    #[test]
    fn last_seen_recent_share_grows_with_k() {
        let summary = last_seen_bias(Scale::Quick);
        assert_eq!(summary.rows.len(), 3);
        assert!(summary.rows[2].recent_share > summary.rows[0].recent_share);
        assert!(summary.rows[2].recent_share > summary.uniform_recent_share);
    }

    #[test]
    fn error_shrinks_with_impression_size() {
        let summary = error_vs_size(Scale::Quick);
        let first = summary.rows.first().unwrap();
        let last = summary.rows.last().unwrap();
        assert!(last.mean_predicted_error < first.mean_predicted_error);
    }

    #[test]
    fn escalation_grows_with_tighter_targets() {
        let summary = escalation(Scale::Quick);
        assert_eq!(summary.rows.len(), 3);
        assert!(
            summary.rows[2].mean_escalations >= summary.rows[0].mean_escalations,
            "1% target should escalate at least as much as 10%"
        );
        assert!(
            summary.rows[2].mean_rows_scanned >= summary.rows[0].mean_rows_scanned,
            "tighter targets must scan at least as many rows"
        );
        // every query is ultimately satisfied because the base data is reachable
        assert!(summary.rows.iter().all(|r| r.satisfied_fraction > 0.99));
    }

    #[test]
    fn runtime_grows_with_rows_scanned() {
        let summary = runtime_vs_size(Scale::Quick);
        assert!(summary.rows.len() >= 3);
        let first = summary.rows.first().unwrap();
        let last = summary.rows.last().unwrap();
        assert!(last.rows > first.rows);
        assert_eq!(last.relative_error, 0.0);
        // measured scan work is reported for every level
        assert!(summary.rows.iter().all(|r| r.rows_scanned > 0));
        assert!(summary.rows.iter().all(|r| r.levels_visited >= 1));
    }

    #[test]
    fn adaptation_improves_new_focus_share() {
        let summary = adaptation(Scale::Quick);
        assert!(summary.shift > 0.5);
        assert!(summary.after_share >= summary.before_share);
    }
}
