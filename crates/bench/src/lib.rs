//! # sciborq-bench
//!
//! The experiment harness of the SciBORQ reproduction: one function per
//! paper figure (and per quantitative claim in the text), each of which
//! regenerates the corresponding table/series on the synthetic SkyServer
//! warehouse and prints it in a shape directly comparable with the paper.
//!
//! The `experiments` binary (`cargo run -p sciborq-bench --release --bin
//! experiments -- <experiment|all>`) drives these functions; the Criterion
//! benches under `benches/` measure the performance-sensitive kernels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod setup;

pub use experiments::*;
pub use setup::*;
