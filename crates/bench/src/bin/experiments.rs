//! Experiment runner: regenerates every figure of the SciBORQ paper plus the
//! text-level experiments on the synthetic SkyServer warehouse.
//!
//! Usage:
//!   cargo run -p sciborq-bench --release --bin experiments -- <experiment> [--quick]
//!
//! where `<experiment>` is one of
//!   fig4 | fig5 | fig6 | fig7 | reservoir | lastseen | bounds | escalation |
//!   adapt | runtime | all
//!
//! `--quick` shrinks the data sizes so the whole suite finishes in seconds.

use sciborq_bench::{
    adaptation, error_vs_size, escalation, figure4, figure5, figure6, figure7, last_seen_bias,
    reservoir_uniformity, runtime_vs_size, Scale,
};

fn run(name: &str, scale: Scale) -> bool {
    match name {
        "fig4" => {
            figure4(scale);
        }
        "fig5" => {
            figure5(scale);
        }
        "fig6" => {
            figure6(scale);
        }
        "fig7" => {
            figure7(scale);
        }
        "reservoir" => {
            reservoir_uniformity(scale);
        }
        "lastseen" => {
            last_seen_bias(scale);
        }
        "bounds" => {
            error_vs_size(scale);
        }
        "escalation" => {
            escalation(scale);
        }
        "adapt" => {
            adaptation(scale);
        }
        "runtime" => {
            runtime_vs_size(scale);
        }
        _ => return false,
    }
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiment = args.first().map(String::as_str).unwrap_or("all");
    let scale = match Scale::parse(args.get(1).map(String::as_str)) {
        Some(scale) => scale,
        None => {
            eprintln!(
                "unknown scale flag '{}'. expected --quick or --paper",
                args[1]
            );
            std::process::exit(2);
        }
    };

    let all = [
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "reservoir",
        "lastseen",
        "bounds",
        "escalation",
        "adapt",
        "runtime",
    ];

    if experiment == "all" {
        for (i, name) in all.iter().enumerate() {
            if i > 0 {
                println!("\n{}\n", "=".repeat(78));
            }
            run(name, scale);
        }
        return;
    }
    if !run(experiment, scale) {
        eprintln!(
            "unknown experiment '{experiment}'. expected one of: all {}",
            all.join(" ")
        );
        std::process::exit(2);
    }
}
