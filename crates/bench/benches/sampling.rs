//! Figure 7 macro-benchmark: building a 10 000-tuple uniform versus biased
//! impression over the synthetic warehouse, end to end (generator → load →
//! reservoir → materialisation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sciborq_bench::{build_dataset, build_predicate_set, Scale};
use sciborq_core::{LayerHierarchy, SamplingPolicy, SciborqConfig};

fn bench_impression_construction(c: &mut Criterion) {
    let dataset = build_dataset(Scale::Quick);
    let fact = dataset.catalog.table("photoobj").expect("fact table");
    let fact = fact.read();
    let ps = build_predicate_set(Scale::Quick, 4);

    let mut group = c.benchmark_group("impression_construction");
    group.sample_size(10);
    for size in [1_000usize, 5_000] {
        let config = SciborqConfig::with_layers(vec![size]);
        group.bench_with_input(BenchmarkId::new("uniform", size), &size, |b, _| {
            b.iter(|| {
                LayerHierarchy::build_from_table(&fact, SamplingPolicy::Uniform, &config, None)
                    .expect("hierarchy")
                    .byte_size()
            })
        });
        group.bench_with_input(BenchmarkId::new("biased", size), &size, |b, _| {
            b.iter(|| {
                LayerHierarchy::build_from_table(
                    &fact,
                    SamplingPolicy::biased(["ra", "dec"]),
                    &config,
                    Some(&ps),
                )
                .expect("hierarchy")
                .byte_size()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_impression_construction);
criterion_main!(benches);
