//! Figure 4 kernels: evaluating the full estimator f̂ (O(N) per point)
//! versus the binned estimator f̆ (O(β) per point), which is what makes
//! per-tuple weighting during loads feasible.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sciborq_stats::{BinnedKde, EquiWidthHistogram, FullKde, Kernel};

fn predicate_values(n: usize) -> Vec<f64> {
    // deterministic bimodal predicate set, no RNG needed
    (0..n)
        .map(|i| {
            if i % 3 == 0 {
                210.0 + (i % 17) as f64 * 0.3
            } else {
                160.0 + (i % 23) as f64 * 0.4
            }
        })
        .collect()
}

fn bench_kde(c: &mut Criterion) {
    let mut group = c.benchmark_group("density_estimation");
    for n in [400usize, 4_000, 40_000] {
        let values = predicate_values(n);
        let full = FullKde::new(values.clone(), 2.5, Kernel::Gaussian).expect("f̂");
        let mut hist = EquiWidthHistogram::new(0.0, 360.0, 24).expect("hist");
        hist.observe_all(&values);
        let binned = BinnedKde::from_histogram(&hist).expect("f̆");

        group.bench_with_input(BenchmarkId::new("full_f_hat", n), &n, |b, _| {
            b.iter(|| black_box(full.density(black_box(186.5))))
        });
        group.bench_with_input(BenchmarkId::new("binned_f_breve", n), &n, |b, _| {
            b.iter(|| black_box(binned.density(black_box(186.5))))
        });
    }
    group.finish();

    // histogram maintenance itself (Figure 5 inner loop)
    c.bench_function("histogram_observe_100k", |b| {
        let values = predicate_values(100_000);
        b.iter(|| {
            let mut hist = EquiWidthHistogram::new(0.0, 360.0, 24).expect("hist");
            hist.observe_all(black_box(&values));
            hist.total()
        })
    });
}

criterion_group!(benches, bench_kde);
criterion_main!(benches);
