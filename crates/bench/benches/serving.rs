//! Concurrent serving throughput: shared scans on vs off.
//!
//! Closed-loop clients hammer a [`QueryServer`] with a four-query
//! same-impression workload whose error bounds force one escalation (the
//! 10k layer misses the bound, the 100k layer meets it), at 1, 4 and 16
//! concurrent clients, with shared-scan batching enabled and disabled.
//! Before any timing, every workload answer served through the shared-scan
//! path is cross-checked **bit for bit** against serial
//! `ExplorationSession::execute`, so a scan-sharing bug cannot post a
//! winning number.
//!
//! The speedup comes from deduplication, not thread fan-out: a drained
//! batch of N queries collapses into one shared pass per escalation level
//! with one scan per *distinct* (predicate, sink) group — 16 concurrent
//! clients rotating over 4 queries cost ~4 scans per pass instead of 16.
//! That holds on a single core, where this bench honestly reports
//! `available_parallelism` for context.
//!
//! Hand-rolled harness; pass `--serving-json-out <path>` to write a
//! `BENCH_serving.json` artifact (queries/sec with p50/p99 latency per
//! cell, plus the 16-client shared-vs-unshared speedup). Latency
//! percentiles come from the telemetry crate's fixed-bucket
//! [`Histogram`] — the same estimator the serving layer exports through
//! its `metrics` command — so bench numbers and live introspection agree
//! on methodology.

use sciborq_columnar::{AggregateKind, Catalog, DataType, Field, Predicate, Schema, Table, Value};
use sciborq_core::{
    EvaluationLevel, ExplorationSession, QueryBounds, QueryOutcome, SamplingPolicy, SciborqConfig,
};
use sciborq_serve::{QueryServer, ServeConfig, ServerReply};
use sciborq_telemetry::Histogram;
use sciborq_workload::{AttributeDomain, Query};
use std::fmt::Write as _;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const ROWS: usize = 200_000;
const LAYERS: [usize; 2] = [100_000, 10_000];
const CONCURRENCIES: [usize; 3] = [1, 4, 16];
const QUERIES_PER_CELL: usize = 320;

fn build_table() -> Table {
    let schema = Schema::shared(vec![
        Field::new("objid", DataType::Int64),
        Field::new("ra", DataType::Float64),
        Field::new("r_mag", DataType::Float64),
    ])
    .unwrap();
    let mut table = Table::new("photoobj", schema);
    for i in 0..ROWS as i64 {
        let ra = (i as f64 * 137.507_764).rem_euclid(360.0);
        let r_mag = 14.0 + (i % 1_000) as f64 / 125.0;
        table
            .append_row(&[Value::Int64(i), Value::Float64(ra), Value::Float64(r_mag)])
            .unwrap();
    }
    table
}

fn build_session() -> ExplorationSession {
    let catalog = Catalog::new();
    catalog.register(build_table()).unwrap();
    let session = ExplorationSession::new(
        catalog,
        SciborqConfig::with_layers(LAYERS.to_vec()),
        &[("ra", AttributeDomain::new(0.0, 360.0, 36))],
    )
    .unwrap();
    session
        .create_impressions("photoobj", SamplingPolicy::Uniform)
        .unwrap();
    session
}

/// Four same-impression queries tuned so the 10k layer misses the error
/// bound and the 100k layer meets it: every serial execution scans both
/// layers (~110k rows). A batched pass shares those scans across clients.
fn workload() -> Vec<(Query, QueryBounds)> {
    vec![
        (
            Query::count("photoobj", Predicate::lt("ra", 90.0)),
            QueryBounds::max_error(0.02),
        ),
        (
            Query::count("photoobj", Predicate::between("ra", 90.0, 270.0)),
            QueryBounds::max_error(0.015),
        ),
        (
            Query::count("photoobj", Predicate::gt_eq("ra", 270.0)),
            QueryBounds::max_error(0.02),
        ),
        (
            Query::aggregate(
                "photoobj",
                Predicate::lt("ra", 180.0),
                AggregateKind::Sum,
                "r_mag",
            ),
            QueryBounds::max_error(0.015),
        ),
    ]
}

fn serve_config(shared_scans: bool) -> ServeConfig {
    ServeConfig {
        shared_scans,
        batch_window: Duration::from_micros(1_000),
        max_batch: 32,
        ..ServeConfig::default()
    }
}

fn answer_bits(outcome: &QueryOutcome) -> (Option<u64>, EvaluationLevel, u64, usize, bool) {
    let a = outcome.as_aggregate().expect("aggregate workload");
    (
        a.value.map(f64::to_bits),
        a.level,
        a.rows_scanned,
        a.escalations,
        a.error_bound_met,
    )
}

/// Serial reference answers; also asserts the workload has the intended
/// shape (one escalation, resolved on the most detailed impression).
fn serial_reference(
    session: &ExplorationSession,
) -> Vec<(Option<u64>, EvaluationLevel, u64, usize, bool)> {
    workload()
        .iter()
        .map(|(query, bounds)| {
            let outcome = session.execute(query, bounds).expect("serial execution");
            let bits = answer_bits(&outcome);
            assert_eq!(
                bits.1,
                EvaluationLevel::Layer(1),
                "workload must resolve on the detailed layer: {query}"
            );
            assert_eq!(bits.3, 1, "workload must escalate exactly once: {query}");
            assert!(bits.4, "workload must meet its error bound: {query}");
            bits
        })
        .collect()
}

/// Cross-check the shared-scan server bit for bit against the serial
/// reference under real concurrency. Panics on any divergence.
fn verify_bit_identity(
    server: &Arc<QueryServer>,
    reference: &[(Option<u64>, EvaluationLevel, u64, usize, bool)],
) {
    let clients = 8;
    let barrier = Arc::new(Barrier::new(clients));
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let server = Arc::clone(server);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                workload()
                    .into_iter()
                    .cycle()
                    .skip(c % 4)
                    .take(4)
                    .map(|(query, bounds)| server.submit(query, bounds))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for (c, handle) in handles.into_iter().enumerate() {
        for (i, reply) in handle.join().unwrap().into_iter().enumerate() {
            let expected = &reference[(c + i) % 4];
            let ServerReply::Aggregate { answer, .. } = reply else {
                panic!("unexpected reply shape: {reply:?}");
            };
            let got = (
                answer.value.map(f64::to_bits),
                answer.level,
                answer.rows_scanned,
                answer.escalations,
                answer.error_bound_met,
            );
            assert_eq!(&got, expected, "shared-scan answer diverged from serial");
        }
    }
}

struct Cell {
    shared: bool,
    clients: usize,
    qps: f64,
    p50_us: u64,
    p99_us: u64,
}

fn run_cell(server: &Arc<QueryServer>, shared: bool, clients: usize) -> Cell {
    let per_client = QUERIES_PER_CELL / clients;
    let barrier = Arc::new(Barrier::new(clients + 1));
    // One lock-free telemetry histogram shared by every client thread —
    // the same estimator `sciborq-served` exports via its `metrics`
    // command, so live and benched percentiles share one methodology.
    let latency = Arc::new(Histogram::latency_micros());
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let server = Arc::clone(server);
            let barrier = Arc::clone(&barrier);
            let latency = Arc::clone(&latency);
            std::thread::spawn(move || {
                let workload = workload();
                barrier.wait();
                for i in 0..per_client {
                    let (query, bounds) = workload[(c + i) % workload.len()].clone();
                    let start = Instant::now();
                    let reply = server.submit(query, bounds);
                    latency.observe(start.elapsed().as_micros() as u64);
                    assert!(
                        matches!(reply, ServerReply::Aggregate { .. }),
                        "bench cell reply diverged: {reply:?}"
                    );
                }
            })
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    for handle in handles {
        handle.join().unwrap();
    }
    let elapsed = started.elapsed();
    Cell {
        shared,
        clients,
        qps: latency.count() as f64 / elapsed.as_secs_f64(),
        p50_us: latency.percentile(0.50),
        p99_us: latency.percentile(0.99),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--serving-json-out" {
            json_out = it.next().cloned();
        } else if let Some(path) = arg.strip_prefix("--serving-json-out=") {
            json_out = Some(path.to_owned());
        } else if arg == "--json-out"
            || arg == "--parallel-json-out"
            || arg == "--weighted-json-out"
        {
            // other bench binaries' flags: consume their values
            it.next();
        }
        // remaining flags (e.g. cargo bench's `--bench`) are ignored
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "serving: concurrent bounded queries through the serving layer on {ROWS} rows \
         (layers {LAYERS:?}, {QUERIES_PER_CELL} queries/cell, {cores} core(s) available)\n"
    );

    // --- verification before any timing ------------------------------------
    let reference_session = build_session();
    let reference = serial_reference(&reference_session);
    let shared_server =
        Arc::new(QueryServer::new(build_session(), serve_config(true)).expect("shared server"));
    verify_bit_identity(&shared_server, &reference);
    println!("shared-scan answers verified bit-identical to serial execution\n");

    let unshared_server =
        Arc::new(QueryServer::new(build_session(), serve_config(false)).expect("unshared server"));

    // --- measurement --------------------------------------------------------
    let mut cells: Vec<Cell> = Vec::new();
    for &clients in &CONCURRENCIES {
        for (shared, server) in [(false, &unshared_server), (true, &shared_server)] {
            cells.push(run_cell(server, shared, clients));
        }
    }

    // --- report ------------------------------------------------------------
    println!(
        "{:<14} {:>8} {:>12} {:>10} {:>10}",
        "shared_scans", "clients", "queries/s", "p50", "p99"
    );
    for cell in &cells {
        println!(
            "{:<14} {:>8} {:>12.0} {:>8}µs {:>8}µs",
            if cell.shared { "on" } else { "off" },
            cell.clients,
            cell.qps,
            cell.p50_us,
            cell.p99_us
        );
    }
    let qps_at = |shared: bool, clients: usize| {
        cells
            .iter()
            .find(|c| c.shared == shared && c.clients == clients)
            .map_or(0.0, |c| c.qps)
    };
    let speedup_16 = qps_at(true, 16) / qps_at(false, 16).max(1e-9);
    println!("\n16-client shared-scan speedup: {speedup_16:.2}x on {cores} core(s)");

    let batches = shared_server.stats().shared_batches;
    assert!(batches > 0, "the shared-scan scheduler never batched");

    if let Some(path) = json_out {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"rows\": {ROWS},");
        let _ = writeln!(json, "  \"layers\": [{}, {}],", LAYERS[0], LAYERS[1]);
        let _ = writeln!(json, "  \"queries_per_cell\": {QUERIES_PER_CELL},");
        let _ = writeln!(json, "  \"available_parallelism\": {cores},");
        let _ = writeln!(json, "  \"bit_identical\": true,");
        let _ = writeln!(json, "  \"percentile_source\": \"telemetry-histogram\",");
        let _ = writeln!(json, "  \"shared_batches\": {batches},");
        let _ = writeln!(json, "  \"speedup_16\": {speedup_16:.2},");
        json.push_str("  \"cells\": [\n");
        for (i, cell) in cells.iter().enumerate() {
            let _ = write!(
                json,
                "    {{\"shared_scans\": {}, \"clients\": {}, \"qps\": {:.1}, \
                 \"p50_us\": {}, \"p99_us\": {}}}",
                cell.shared, cell.clients, cell.qps, cell.p50_us, cell.p99_us
            );
            json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write bench summary");
        println!("wrote summary to {path}");
    }
}
