//! Single-threaded vs sharded scan benchmark on a paper-scale table.
//!
//! Times the compiled-predicate kernels (`CompiledPredicate`) against their
//! partitioned counterparts (`*_partitioned` over a [`Partitioning`] fanned
//! out on `std::thread::scope` workers) on a 200k-row table with the
//! SkyServer column mix. Before any timing, every sharded result is
//! cross-checked **bit for bit** against both the single-threaded kernel and
//! the scalar oracle (`Predicate::evaluate` + `compute_aggregate`), so a
//! silently wrong shard merge cannot post a winning number.
//!
//! Hand-rolled harness (not criterion) so it can emit a machine-readable
//! summary: pass `--parallel-json-out <path>` to write a
//! `BENCH_parallel.json` artifact (the flag is distinct from scan_kernels'
//! `--json-out`, so `cargo bench` can pass both to every bench binary).
//!
//! Speedups depend on physical cores: on a single-core host the sharded
//! path degrades to sequential-plus-overhead and the summary records that
//! honestly (`available_parallelism` is included for context).

use sciborq_columnar::{
    compute_aggregate, AggregateKind, CompiledPredicate, DataType, Field, Partitioning, Predicate,
    RecordBatchBuilder, Schema, Table, Value,
};
use std::fmt::Write as _;
use std::time::Instant;

const ROWS: usize = 200_000;
const ITERS: u32 = 9;
const SHARD_COUNTS: [usize; 2] = [2, 4];

fn build_table() -> Table {
    let schema = Schema::shared(vec![
        Field::new("objid", DataType::Int64),
        Field::new("ra", DataType::Float64),
        Field::new("dec", DataType::Float64),
        Field::nullable("r_mag", DataType::Float64),
        Field::new("class", DataType::Utf8),
    ])
    .unwrap();
    let classes = ["GALAXY", "STAR", "QSO"];
    let mut b = RecordBatchBuilder::with_capacity(schema.clone(), ROWS);
    for i in 0..ROWS as i64 {
        let h = ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % 1_000_000) as f64 / 1_000_000.0;
        let ra = (i % 3600) as f64 / 10.0;
        let dec = h * 180.0 - 90.0;
        let mag = if i % 17 == 0 {
            Value::Null
        } else {
            Value::Float64(14.0 + 10.0 * h)
        };
        b.push_row(&[
            Value::Int64(i),
            Value::Float64(ra),
            Value::Float64(dec),
            mag,
            Value::Utf8(classes[(i % 3) as usize].to_owned()),
        ])
        .unwrap();
    }
    let mut t = Table::new("photoobj", schema);
    t.append_batch(&b.finish().unwrap()).unwrap();
    t
}

fn time_ns(mut f: impl FnMut() -> u64) -> f64 {
    std::hint::black_box(f());
    let mut sink = 0u64;
    let start = Instant::now();
    for _ in 0..ITERS {
        sink = sink.wrapping_add(f());
    }
    let elapsed = start.elapsed().as_nanos() as f64 / ITERS as f64;
    std::hint::black_box(sink);
    elapsed
}

struct BenchRow {
    name: &'static str,
    threads: usize,
    single_ns: f64,
    sharded_ns: f64,
}

impl BenchRow {
    fn speedup(&self) -> f64 {
        self.single_ns / self.sharded_ns.max(1.0)
    }
}

/// Verify the sharded pipeline bit for bit against the single-threaded
/// kernels and the scalar oracle for one predicate, across all measured
/// shard counts. Panics on any divergence.
fn verify_bit_identity(table: &Table, predicate: &Predicate, compiled: &CompiledPredicate) {
    let oracle_sel = predicate.evaluate(table).expect("oracle evaluates");
    let single_sel = compiled.evaluate(table).expect("kernels evaluate");
    assert_eq!(
        oracle_sel, single_sel,
        "single-threaded vs oracle selection"
    );
    let (single_count, _) = compiled.count_matches(table).expect("fused count");
    let (single_sketch, _) = compiled
        .filter_moments(table, "r_mag")
        .expect("fused moments");
    for shards in SHARD_COUNTS {
        let parts = Partitioning::even(table.row_count(), shards);
        let (sel, _) = compiled
            .evaluate_partitioned(table, &parts)
            .expect("sharded evaluate");
        assert_eq!(sel, single_sel, "sharded selection at {shards} shards");
        let (count, _) = compiled
            .count_matches_partitioned(table, &parts)
            .expect("sharded count");
        assert_eq!(count, single_count, "sharded count at {shards} shards");
        let (sketch, _) = compiled
            .filter_moments_partitioned(table, "r_mag", &parts)
            .expect("sharded moments");
        for (name, a, b) in [
            ("sum", sketch.sum, single_sketch.sum),
            ("mean", sketch.mean, single_sketch.mean),
            ("m2", sketch.m2, single_sketch.m2),
            ("min", sketch.min, single_sketch.min),
            ("max", sketch.max, single_sketch.max),
        ] {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "sharded {name} diverges at {shards} shards"
            );
        }
        // and against the scalar oracle, aggregate by aggregate
        for kind in [AggregateKind::Sum, AggregateKind::Avg, AggregateKind::Min] {
            let exact = compute_aggregate(table, Some("r_mag"), kind, &oracle_sel)
                .expect("oracle aggregate")
                .value;
            assert_eq!(
                exact.map(f64::to_bits),
                sketch.aggregate(kind).map(f64::to_bits),
                "sharded {kind} vs scalar oracle at {shards} shards"
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--parallel-json-out" {
            json_out = it.next().cloned();
        } else if let Some(path) = arg.strip_prefix("--parallel-json-out=") {
            json_out = Some(path.to_owned());
        } else if arg == "--json-out" || arg == "--weighted-json-out" || arg == "--serving-json-out"
        {
            // other benches' flags: consume their values so they are not misread
            it.next();
        }
        // other flags (e.g. cargo bench's `--bench`) are ignored
    }

    let table = build_table();
    let schema = table.schema();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "parallel_scan: single-threaded vs sharded kernels on {} rows \
         ({ITERS} iters/case, {cores} core(s) available)\n",
        table.row_count()
    );

    let cone = Predicate::between("ra", 180.0, 190.0)
        .and(Predicate::between("dec", -5.0, 5.0))
        .and(Predicate::lt("r_mag", 20.0));
    let range = Predicate::between("ra", 90.0, 270.0);

    let mut rows: Vec<BenchRow> = Vec::new();

    // --- verification before any timing ------------------------------------
    for predicate in [&cone, &range] {
        let compiled = CompiledPredicate::compile(predicate, schema).expect("compiles");
        verify_bit_identity(&table, predicate, &compiled);
    }
    println!("bit-identity verified against the single-threaded kernels and the scalar oracle\n");

    // --- fused filter+aggregate (the acceptance case) ----------------------
    {
        let compiled = CompiledPredicate::compile(&cone, schema).expect("compiles");
        let single_ns = time_ns(|| {
            compiled
                .filter_moments(&table, "r_mag")
                .expect("fused")
                .0
                .matched as u64
        });
        for shards in SHARD_COUNTS {
            let parts = Partitioning::even(table.row_count(), shards);
            let sharded_ns = time_ns(|| {
                compiled
                    .filter_moments_partitioned(&table, "r_mag", &parts)
                    .expect("sharded")
                    .0
                    .matched as u64
            });
            rows.push(BenchRow {
                name: "fused_filter_aggregate",
                threads: shards,
                single_ns,
                sharded_ns,
            });
        }
    }

    // --- fused filter+count -------------------------------------------------
    {
        let compiled = CompiledPredicate::compile(&cone, schema).expect("compiles");
        let single_ns = time_ns(|| compiled.count_matches(&table).expect("fused").0 as u64);
        for shards in SHARD_COUNTS {
            let parts = Partitioning::even(table.row_count(), shards);
            let sharded_ns = time_ns(|| {
                compiled
                    .count_matches_partitioned(&table, &parts)
                    .expect("sharded")
                    .0 as u64
            });
            rows.push(BenchRow {
                name: "fused_filter_count",
                threads: shards,
                single_ns,
                sharded_ns,
            });
        }
    }

    // --- selection materialisation ------------------------------------------
    {
        let compiled = CompiledPredicate::compile(&range, schema).expect("compiles");
        let single_ns = time_ns(|| compiled.evaluate(&table).expect("kernels").len() as u64);
        for shards in SHARD_COUNTS {
            let parts = Partitioning::even(table.row_count(), shards);
            let sharded_ns = time_ns(|| {
                compiled
                    .evaluate_partitioned(&table, &parts)
                    .expect("sharded")
                    .0
                    .len() as u64
            });
            rows.push(BenchRow {
                name: "selection_scan",
                threads: shards,
                single_ns,
                sharded_ns,
            });
        }
    }

    // --- report ------------------------------------------------------------
    println!(
        "{:<24} {:>8} {:>14} {:>14} {:>9}",
        "benchmark", "threads", "single", "sharded", "speedup"
    );
    for row in &rows {
        println!(
            "{:<24} {:>8} {:>12.0}µs {:>12.0}µs {:>8.2}x",
            row.name,
            row.threads,
            row.single_ns / 1e3,
            row.sharded_ns / 1e3,
            row.speedup()
        );
    }
    let best = rows
        .iter()
        .filter(|r| r.name == "fused_filter_aggregate")
        .map(|r| r.speedup())
        .fold(0.0f64, f64::max);
    println!("\nbest fused filter+aggregate speedup: {best:.2}x on {cores} core(s)");

    if let Some(path) = json_out {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"rows\": {ROWS},");
        let _ = writeln!(json, "  \"iterations\": {ITERS},");
        let _ = writeln!(json, "  \"available_parallelism\": {cores},");
        let _ = writeln!(json, "  \"bit_identical\": true,");
        let _ = writeln!(
            json,
            "  \"best_fused_filter_aggregate_speedup\": {best:.2},"
        );
        json.push_str("  \"benchmarks\": [\n");
        for (i, row) in rows.iter().enumerate() {
            let _ = write!(
                json,
                "    {{\"name\": \"{}\", \"threads\": {}, \"single_ns\": {:.0}, \
                 \"sharded_ns\": {:.0}, \"speedup\": {:.2}}}",
                row.name,
                row.threads,
                row.single_ns,
                row.sharded_ns,
                row.speedup()
            );
            json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write bench summary");
        println!("wrote summary to {path}");
    }
}
