//! E7/E10 micro-benchmark: bounded cone-search aggregates against impression
//! layers of increasing size versus the full base scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sciborq_bench::{build_dataset, Scale};
use sciborq_core::{
    BoundedQueryEngine, LayerHierarchy, QueryBounds, SamplingPolicy, SciborqConfig,
};
use sciborq_skyserver::Cone;
use sciborq_workload::Query;

fn bench_bounded_queries(c: &mut Criterion) {
    let dataset = build_dataset(Scale::Quick);
    let fact = dataset.catalog.table("photoobj").expect("fact table");
    let fact = fact.read();
    let engine = BoundedQueryEngine::new(SciborqConfig::default()).expect("engine");
    let cone = Cone::new(185.0, 0.0, 5.0);
    let query = Query::count("photoobj", cone.bounding_box_predicate("ra", "dec"));

    let mut group = c.benchmark_group("bounded_count");
    for size in [300usize, 3_000] {
        let config = SciborqConfig::with_layers(vec![size]);
        let hierarchy =
            LayerHierarchy::build_from_table(&fact, SamplingPolicy::Uniform, &config, None)
                .expect("hierarchy");
        group.bench_with_input(BenchmarkId::new("impression", size), &size, |b, _| {
            b.iter(|| {
                engine
                    .execute_aggregate(&query, &hierarchy, None, &QueryBounds::default())
                    .expect("query")
                    .rows_scanned
            })
        });
    }
    {
        // the exact, base-data evaluation for reference
        let config = SciborqConfig::with_layers(vec![300]);
        let hierarchy =
            LayerHierarchy::build_from_table(&fact, SamplingPolicy::Uniform, &config, None)
                .expect("hierarchy");
        group.bench_function("base_scan", |b| {
            b.iter(|| {
                engine
                    .execute_aggregate(
                        &query,
                        &hierarchy,
                        Some(&fact),
                        &QueryBounds::max_error(1e-15),
                    )
                    .expect("query")
                    .rows_scanned
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bounded_queries);
criterion_main!(benches);
