//! Throughput of the three reservoir strategies of the paper (Figures 2, 3
//! and 6): how many tuples per second the load-time construction of an
//! impression can absorb.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sciborq_sampling::{BiasedReservoir, LastSeenReservoir, Reservoir, SamplingStrategy};

const STREAM: u64 = 100_000;

fn bench_reservoirs(c: &mut Criterion) {
    let mut group = c.benchmark_group("reservoir_observe");
    group.throughput(Throughput::Elements(STREAM));
    for capacity in [1_000usize, 10_000] {
        group.bench_with_input(
            BenchmarkId::new("algorithm_r", capacity),
            &capacity,
            |b, &cap| {
                b.iter(|| {
                    let mut r = Reservoir::new(cap, 1);
                    for i in 0..STREAM {
                        r.observe(black_box(i));
                    }
                    r.len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("last_seen", capacity),
            &capacity,
            |b, &cap| {
                b.iter(|| {
                    let mut r =
                        LastSeenReservoir::new(cap, cap as f64, 10_000.0, 1).expect("last-seen");
                    for i in 0..STREAM {
                        r.observe(black_box(i));
                    }
                    r.len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("biased", capacity),
            &capacity,
            |b, &cap| {
                b.iter(|| {
                    let mut r = BiasedReservoir::new(cap, 1).expect("biased");
                    for i in 0..STREAM {
                        let weight = if i % 10 == 0 { 5.0 } else { 0.3 };
                        r.observe_weighted(black_box(i), black_box(weight));
                    }
                    r.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reservoirs);
criterion_main!(benches);
