//! Scalar vs rowwise vs chunked scan benchmark on a paper-scale impression.
//!
//! Three execution tiers are timed on every case:
//!
//! * **scalar** — the row-at-a-time oracle (`Predicate::evaluate` +
//!   `compute_aggregate`): the correctness baseline.
//! * **rowwise** — the retained PR 2 vectorized pipeline
//!   (`CompiledPredicate::{evaluate,count_matches,filter_moments}_rowwise`):
//!   typed tight-loop kernels over candidate lists.
//! * **chunked** — the current default: 64-row `u64` match-mask kernels
//!   ANDed word-at-a-time against the validity bitmaps, with string
//!   predicates on dictionary-encoded columns collapsing to integer code
//!   compares.
//!
//! The table defaults to 10M rows with the SkyServer column mix (ids,
//! coordinates, a nullable magnitude, a class label); set
//! `SCIBORQ_BENCH_QUICK=1` to drop to 200k rows for CI smoke runs. Columns
//! are built in bulk (not row-at-a-time) so table construction does not
//! dominate bench startup.
//!
//! This is a hand-rolled harness (not criterion) so it can emit a machine-
//! readable summary: pass `--json-out <path>` to write a `BENCH_scan.json`
//! style artifact; CI uploads it to track the perf trajectory and fails if
//! the chunked i64 range kernel ever loses to the scalar oracle. Results
//! are cross-checked against the oracle before timing, so a silently wrong
//! kernel cannot post a winning number.

use sciborq_columnar::{
    compute_aggregate, AggregateKind, Column, CompiledPredicate, DataType, Field, Predicate,
    RecordBatch, Schema, Table, Value,
};
use std::fmt::Write as _;
use std::time::Instant;

const FULL_ROWS: usize = 10_000_000;
const QUICK_ROWS: usize = 200_000;

fn quick_mode() -> bool {
    std::env::var("SCIBORQ_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// Bulk column construction: the 10M-row table is built from whole vectors,
/// not per-row `Value` appends.
fn build_table(rows: usize) -> Table {
    let schema = Schema::shared(vec![
        Field::new("objid", DataType::Int64),
        Field::new("ra", DataType::Float64),
        Field::new("dec", DataType::Float64),
        Field::nullable("r_mag", DataType::Float64),
        Field::new("class", DataType::Utf8),
    ])
    .unwrap();
    let classes = ["GALAXY", "STAR", "QSO"];
    let objid = Column::from_i64((0..rows as i64).collect());
    let ra = Column::from_f64((0..rows).map(|i| (i % 3600) as f64 / 10.0).collect());
    let hash = |i: usize| {
        ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % 1_000_000) as f64 / 1_000_000.0
    };
    let dec = Column::from_f64((0..rows).map(|i| hash(i) * 180.0 - 90.0).collect());
    let mut r_mag = Column::with_capacity(DataType::Float64, rows);
    for i in 0..rows {
        let v = if i % 17 == 0 {
            Value::Null
        } else {
            Value::Float64(14.0 + 10.0 * hash(i))
        };
        r_mag.push(&v).unwrap();
    }
    let class = Column::from_strings((0..rows).map(|i| classes[i % 3]));
    let batch = RecordBatch::new(schema, vec![objid, ra, dec, r_mag, class]).unwrap();
    Table::from_batch("photoobj", batch)
}

struct BenchRow {
    name: &'static str,
    scalar_ns: f64,
    rowwise_ns: f64,
    chunked_ns: f64,
}

impl BenchRow {
    fn chunked_vs_scalar(&self) -> f64 {
        self.scalar_ns / self.chunked_ns.max(1.0)
    }
    fn chunked_vs_rowwise(&self) -> f64 {
        self.rowwise_ns / self.chunked_ns.max(1.0)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--json-out" {
            json_out = it.next().cloned();
        } else if let Some(path) = arg.strip_prefix("--json-out=") {
            json_out = Some(path.to_owned());
        } else if arg == "--parallel-json-out"
            || arg == "--weighted-json-out"
            || arg == "--serving-json-out"
        {
            // other benches' flags: consume their values so they are not misread
            it.next();
        }
        // other flags (e.g. cargo bench's `--bench`) are ignored
    }

    let quick = quick_mode();
    let rows_n = if quick { QUICK_ROWS } else { FULL_ROWS };
    let iters: u32 = if quick { 7 } else { 5 };
    let mut table = build_table(rows_n);
    let schema = table.schema().clone();
    println!(
        "scan_kernels: scalar vs rowwise vs chunked on {} rows ({iters} iters/case{})\n",
        table.row_count(),
        if quick { ", quick mode" } else { "" }
    );

    // Time `f` over `iters` iterations (after one warm-up) and return the
    // mean nanoseconds per iteration. The closure returns a checksum folded
    // into a black-box sink so the work cannot be optimised away.
    let time_ns = |f: &mut dyn FnMut() -> u64| -> f64 {
        std::hint::black_box(f());
        let mut sink = 0u64;
        let start = Instant::now();
        for _ in 0..iters {
            sink = sink.wrapping_add(f());
        }
        let elapsed = start.elapsed().as_nanos() as f64 / iters as f64;
        std::hint::black_box(sink);
        elapsed
    };

    let range_i64 = Predicate::between("objid", rows_n as i64 / 4, rows_n as i64 / 2);
    let range = Predicate::between("ra", 180.0, 190.0);
    let cone = Predicate::between("ra", 180.0, 190.0)
        .and(Predicate::between("dec", -5.0, 5.0))
        .and(Predicate::lt("r_mag", 20.0));
    let class_eq = Predicate::eq("class", "GALAXY");

    let mut rows: Vec<BenchRow> = Vec::new();

    // Selection benchmark over all three tiers, with an oracle cross-check
    // first. Used once on the plain table and again (for the string case)
    // after dictionary encoding.
    let mut bench_selection = |table: &Table, name: &'static str, predicate: &Predicate| {
        let compiled = CompiledPredicate::compile(predicate, table.schema()).expect("compiles");
        let expected = predicate.evaluate(table).expect("oracle");
        assert_eq!(
            compiled.evaluate(table).expect("chunked"),
            expected,
            "{name}: chunked selection diverges from the oracle"
        );
        assert_eq!(
            compiled.evaluate_rowwise(table).expect("rowwise").0,
            expected,
            "{name}: rowwise selection diverges from the oracle"
        );
        let scalar_ns = time_ns(&mut || predicate.evaluate(table).expect("oracle").len() as u64);
        let rowwise_ns =
            time_ns(&mut || compiled.evaluate_rowwise(table).expect("rowwise").0.len() as u64);
        let chunked_ns = time_ns(&mut || compiled.evaluate(table).expect("chunked").len() as u64);
        rows.push(BenchRow {
            name,
            scalar_ns,
            rowwise_ns,
            chunked_ns,
        });
    };

    // --- selection benchmarks ---------------------------------------------
    for (name, predicate) in [
        ("range_scan_i64", &range_i64),
        ("range_scan", &range),
        ("conjunctive_cone_scan", &cone),
        ("string_eq_scan", &class_eq),
    ] {
        bench_selection(&table, name, predicate);
    }

    // --- dictionary-encoded string scan ------------------------------------
    // Encode in place (exactly what `Impression::new` does at construction)
    // and re-run the string case: predicates become integer code compares.
    let encoded = table.dict_encode_strings(usize::MAX);
    assert_eq!(encoded, 1, "class column should dictionary-encode");
    bench_selection(&table, "string_eq_scan_dict", &class_eq);

    // The two pipelines end to end: the PR 2 tier stored plain strings and
    // scanned them rowwise; the current tier dictionary-encodes at
    // impression construction and scans the codes chunked. The within-
    // encoding rows above isolate the kernels; this row pairs each tier
    // with the physical layout it actually runs on.
    {
        let plain = rows
            .iter()
            .find(|r| r.name == "string_eq_scan")
            .expect("plain string row timed above");
        let dict = rows
            .iter()
            .find(|r| r.name == "string_eq_scan_dict")
            .expect("dict string row timed above");
        let (scalar_ns, rowwise_ns, chunked_ns) =
            (plain.scalar_ns, plain.rowwise_ns, dict.chunked_ns);
        rows.push(BenchRow {
            name: "string_eq_pipeline",
            scalar_ns,
            rowwise_ns,
            chunked_ns,
        });
    }

    // --- fused filter+aggregate benchmarks --------------------------------
    {
        let compiled = CompiledPredicate::compile(&cone, &schema).expect("compiles");
        let oracle_sel = cone.evaluate(&table).expect("oracle");
        let oracle_count = oracle_sel.len();
        let (fused_count, _) = compiled.count_matches(&table).expect("fused count");
        assert_eq!(fused_count, oracle_count, "fused count diverges");
        let (rowwise_count, _) = compiled
            .count_matches_rowwise(&table)
            .expect("rowwise count");
        assert_eq!(rowwise_count, oracle_count, "rowwise count diverges");
        let scalar_ns = time_ns(&mut || cone.evaluate(&table).expect("oracle").len() as u64);
        let rowwise_ns =
            time_ns(&mut || compiled.count_matches_rowwise(&table).expect("rowwise").0 as u64);
        let chunked_ns = time_ns(&mut || compiled.count_matches(&table).expect("fused").0 as u64);
        rows.push(BenchRow {
            name: "fused_filter_count",
            scalar_ns,
            rowwise_ns,
            chunked_ns,
        });

        let oracle_avg = compute_aggregate(&table, Some("r_mag"), AggregateKind::Avg, &oracle_sel)
            .expect("oracle avg")
            .value;
        let (sketch, _) = compiled.filter_moments(&table, "r_mag").expect("fused avg");
        assert_eq!(
            oracle_avg,
            sketch.aggregate(AggregateKind::Avg),
            "fused AVG diverges"
        );
        let (sketch, _) = compiled
            .filter_moments_rowwise(&table, "r_mag")
            .expect("rowwise avg");
        assert_eq!(
            oracle_avg,
            sketch.aggregate(AggregateKind::Avg),
            "rowwise AVG diverges"
        );
        let scalar_ns = time_ns(&mut || {
            let sel = cone.evaluate(&table).expect("oracle");
            compute_aggregate(&table, Some("r_mag"), AggregateKind::Avg, &sel)
                .expect("aggregate")
                .rows as u64
        });
        let rowwise_ns = time_ns(&mut || {
            compiled
                .filter_moments_rowwise(&table, "r_mag")
                .expect("rowwise")
                .0
                .matched as u64
        });
        let chunked_ns = time_ns(&mut || {
            compiled
                .filter_moments(&table, "r_mag")
                .expect("fused")
                .0
                .matched as u64
        });
        rows.push(BenchRow {
            name: "fused_filter_avg",
            scalar_ns,
            rowwise_ns,
            chunked_ns,
        });
    }

    // --- report ------------------------------------------------------------
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "benchmark", "scalar", "rowwise", "chunked", "vs.scal", "vs.roww"
    );
    for row in &rows {
        println!(
            "{:<24} {:>10.0}µs {:>10.0}µs {:>10.0}µs {:>8.1}x {:>8.1}x",
            row.name,
            row.scalar_ns / 1e3,
            row.rowwise_ns / 1e3,
            row.chunked_ns / 1e3,
            row.chunked_vs_scalar(),
            row.chunked_vs_rowwise(),
        );
    }
    let all_faster = rows.iter().all(|r| r.chunked_ns < r.scalar_ns);
    // conservative floor: the worst chunked-vs-scalar case
    let chunked_vs_scalar = rows
        .iter()
        .map(BenchRow::chunked_vs_scalar)
        .fold(f64::INFINITY, f64::min);
    // the headline: the best chunked-vs-rowwise case, with its name
    let headline = rows
        .iter()
        .max_by(|a, b| {
            a.chunked_vs_rowwise()
                .partial_cmp(&b.chunked_vs_rowwise())
                .expect("finite ratios")
        })
        .expect("non-empty bench set");
    println!(
        "\nchunked path {} the scalar path on every case \
         (worst chunked-vs-scalar {chunked_vs_scalar:.2}x); \
         best chunked-vs-rowwise: {:.2}x on {}",
        if all_faster { "beats" } else { "does NOT beat" },
        headline.chunked_vs_rowwise(),
        headline.name,
    );

    if let Some(path) = json_out {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"rows\": {rows_n},");
        let _ = writeln!(json, "  \"iterations\": {iters},");
        let _ = writeln!(json, "  \"quick_mode\": {quick},");
        let _ = writeln!(json, "  \"all_vectorized_faster\": {all_faster},");
        let _ = writeln!(json, "  \"chunked_vs_scalar\": {chunked_vs_scalar:.2},");
        let _ = writeln!(
            json,
            "  \"headline_chunked_vs_rowwise\": {:.2},",
            headline.chunked_vs_rowwise()
        );
        let _ = writeln!(json, "  \"headline_case\": \"{}\",", headline.name);
        json.push_str("  \"benchmarks\": [\n");
        for (i, row) in rows.iter().enumerate() {
            let _ = write!(
                json,
                "    {{\"name\": \"{}\", \"scalar_ns\": {:.0}, \"rowwise_ns\": {:.0}, \
                 \"chunked_ns\": {:.0}, \"chunked_vs_scalar\": {:.2}, \
                 \"chunked_vs_rowwise\": {:.2}}}",
                row.name,
                row.scalar_ns,
                row.rowwise_ns,
                row.chunked_ns,
                row.chunked_vs_scalar(),
                row.chunked_vs_rowwise(),
            );
            json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write bench summary");
        println!("wrote summary to {path}");
    }
}
