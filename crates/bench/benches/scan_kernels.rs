//! Scalar vs vectorized scan benchmark on a paper-scale impression.
//!
//! Compares the legacy row-at-a-time oracle (`Predicate::evaluate` +
//! `compute_aggregate`) against the compile-once vectorized pipeline
//! (`CompiledPredicate` + scan kernels + fused filter+aggregate) on a
//! 200k-row table with the SkyServer column mix (ids, coordinates, a
//! nullable magnitude, a class label).
//!
//! This is a hand-rolled harness (not criterion) so it can emit a machine-
//! readable summary: pass `--json-out <path>` to write a `BENCH_scan.json`
//! style artifact; CI uploads it to track the perf trajectory. Results are
//! cross-checked against the oracle before timing, so a silently wrong
//! kernel cannot post a winning number.

use sciborq_columnar::{
    compute_aggregate, AggregateKind, CompiledPredicate, DataType, Field, Predicate,
    RecordBatchBuilder, Schema, Table, Value,
};
use std::fmt::Write as _;
use std::time::Instant;

const ROWS: usize = 200_000;
const ITERS: u32 = 7;

fn build_table() -> Table {
    let schema = Schema::shared(vec![
        Field::new("objid", DataType::Int64),
        Field::new("ra", DataType::Float64),
        Field::new("dec", DataType::Float64),
        Field::nullable("r_mag", DataType::Float64),
        Field::new("class", DataType::Utf8),
    ])
    .unwrap();
    let classes = ["GALAXY", "STAR", "QSO"];
    let mut b = RecordBatchBuilder::with_capacity(schema.clone(), ROWS);
    for i in 0..ROWS as i64 {
        // deterministic pseudo-random mix, cheap and reproducible
        let h = ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % 1_000_000) as f64 / 1_000_000.0;
        let ra = (i % 3600) as f64 / 10.0;
        let dec = h * 180.0 - 90.0;
        let mag = if i % 17 == 0 {
            Value::Null
        } else {
            Value::Float64(14.0 + 10.0 * h)
        };
        b.push_row(&[
            Value::Int64(i),
            Value::Float64(ra),
            Value::Float64(dec),
            mag,
            Value::Utf8(classes[(i % 3) as usize].to_owned()),
        ])
        .unwrap();
    }
    let mut t = Table::new("photoobj", schema);
    t.append_batch(&b.finish().unwrap()).unwrap();
    t
}

/// Time `f` over ITERS iterations (after one warm-up) and return the mean
/// nanoseconds per iteration. The closure returns a checksum that is folded
/// into a black-box sink so the work cannot be optimised away.
fn time_ns(mut f: impl FnMut() -> u64) -> f64 {
    std::hint::black_box(f());
    let mut sink = 0u64;
    let start = Instant::now();
    for _ in 0..ITERS {
        sink = sink.wrapping_add(f());
    }
    let elapsed = start.elapsed().as_nanos() as f64 / ITERS as f64;
    std::hint::black_box(sink);
    elapsed
}

struct BenchRow {
    name: &'static str,
    scalar_ns: f64,
    vectorized_ns: f64,
}

impl BenchRow {
    fn speedup(&self) -> f64 {
        self.scalar_ns / self.vectorized_ns.max(1.0)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--json-out" {
            json_out = it.next().cloned();
        } else if let Some(path) = arg.strip_prefix("--json-out=") {
            json_out = Some(path.to_owned());
        } else if arg == "--parallel-json-out"
            || arg == "--weighted-json-out"
            || arg == "--serving-json-out"
        {
            // other benches' flags: consume their values so they are not misread
            it.next();
        }
        // other flags (e.g. cargo bench's `--bench`) are ignored
    }

    let table = build_table();
    let schema = table.schema();
    println!(
        "scan_kernels: scalar oracle vs vectorized pipeline on {} rows ({ITERS} iters/case)\n",
        table.row_count()
    );

    let range = Predicate::between("ra", 180.0, 190.0);
    let cone = Predicate::between("ra", 180.0, 190.0)
        .and(Predicate::between("dec", -5.0, 5.0))
        .and(Predicate::lt("r_mag", 20.0));
    let class_eq = Predicate::eq("class", "GALAXY");

    let mut rows: Vec<BenchRow> = Vec::new();

    // --- selection benchmarks ---------------------------------------------
    for (name, predicate) in [
        ("range_scan", &range),
        ("conjunctive_cone_scan", &cone),
        ("string_eq_scan", &class_eq),
    ] {
        let compiled = CompiledPredicate::compile(predicate, schema).expect("compiles");
        let expected = predicate.evaluate(&table).expect("oracle").len();
        assert_eq!(
            compiled.evaluate(&table).expect("kernels").len(),
            expected,
            "{name}: vectorized selection diverges from the oracle"
        );
        let scalar_ns = time_ns(|| predicate.evaluate(&table).expect("oracle").len() as u64);
        let vectorized_ns = time_ns(|| compiled.evaluate(&table).expect("kernels").len() as u64);
        rows.push(BenchRow {
            name,
            scalar_ns,
            vectorized_ns,
        });
    }

    // --- fused filter+aggregate benchmarks --------------------------------
    {
        let compiled = CompiledPredicate::compile(&cone, schema).expect("compiles");
        let oracle_sel = cone.evaluate(&table).expect("oracle");
        let oracle_count = oracle_sel.len();
        let (fused_count, _) = compiled.count_matches(&table).expect("fused count");
        assert_eq!(fused_count, oracle_count, "fused count diverges");
        let scalar_ns = time_ns(|| cone.evaluate(&table).expect("oracle").len() as u64);
        let vectorized_ns = time_ns(|| compiled.count_matches(&table).expect("fused").0 as u64);
        rows.push(BenchRow {
            name: "fused_filter_count",
            scalar_ns,
            vectorized_ns,
        });

        let oracle_avg = compute_aggregate(&table, Some("r_mag"), AggregateKind::Avg, &oracle_sel)
            .expect("oracle avg")
            .value;
        let (sketch, _) = compiled.filter_moments(&table, "r_mag").expect("fused avg");
        assert_eq!(
            oracle_avg,
            sketch.aggregate(AggregateKind::Avg),
            "fused AVG diverges"
        );
        let scalar_ns = time_ns(|| {
            let sel = cone.evaluate(&table).expect("oracle");
            compute_aggregate(&table, Some("r_mag"), AggregateKind::Avg, &sel)
                .expect("aggregate")
                .rows as u64
        });
        let vectorized_ns = time_ns(|| {
            compiled
                .filter_moments(&table, "r_mag")
                .expect("fused")
                .0
                .matched as u64
        });
        rows.push(BenchRow {
            name: "fused_filter_avg",
            scalar_ns,
            vectorized_ns,
        });
    }

    // --- report ------------------------------------------------------------
    println!(
        "{:<24} {:>14} {:>14} {:>9}",
        "benchmark", "scalar", "vectorized", "speedup"
    );
    for row in &rows {
        println!(
            "{:<24} {:>12.0}µs {:>12.0}µs {:>8.1}x",
            row.name,
            row.scalar_ns / 1e3,
            row.vectorized_ns / 1e3,
            row.speedup()
        );
    }
    let all_faster = rows.iter().all(|r| r.vectorized_ns < r.scalar_ns);
    println!(
        "\nvectorized path {} the scalar path on every case",
        if all_faster { "beats" } else { "does NOT beat" }
    );

    if let Some(path) = json_out {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"rows\": {ROWS},");
        let _ = writeln!(json, "  \"iterations\": {ITERS},");
        let _ = writeln!(json, "  \"all_vectorized_faster\": {all_faster},");
        json.push_str("  \"benchmarks\": [\n");
        for (i, row) in rows.iter().enumerate() {
            let _ = write!(
                json,
                "    {{\"name\": \"{}\", \"scalar_ns\": {:.0}, \"vectorized_ns\": {:.0}, \"speedup\": {:.2}}}",
                row.name, row.scalar_ns, row.vectorized_ns, row.speedup()
            );
            json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write bench summary");
        println!("wrote summary to {path}");
    }
}
