//! Selection-based vs streamed weighted (Hansen–Hurwitz) estimation on a
//! paper-scale biased impression.
//!
//! A biased impression (SkyServer column mix, skewed interest weights;
//! 10M rows by default, 200k with `SCIBORQ_BENCH_QUICK=1`) is estimated
//! three ways per aggregate:
//!
//! * **legacy selection path** — a faithful reproduction of the pre-streamed
//!   estimator: materialise the selection vector, then allocate a
//!   `Vec<WeightedObservation>` spanning *all* impression rows with a
//!   per-row `selection.contains(i)` binary search, then run the slice
//!   estimator. This is the `O(n)` allocation + `O(n log m)` search the
//!   streamed path removes.
//! * **selection fallback** — the current public-API fallback: materialise
//!   the selection, walk only the selected rows (linear, no zero padding).
//! * **streamed** — the fused weighted kernels
//!   (`CompiledPredicate::{count_weighted, filter_weighted_moments}`): one
//!   pass, no selection vector, no observation vector.
//!
//! Before any timing, all three paths (plus the sharded streamed variants)
//! are cross-checked **bit for bit** against each other and the scalar
//! predicate oracle, so a silently wrong kernel cannot post a winning
//! number. The JSON summary records the legacy-vs-streamed ratio as
//! `selection_vs_streamed_speedup` (the headline acceptance number) and the
//! optimized-fallback ratio separately.
//!
//! Hand-rolled harness (not criterion); pass `--weighted-json-out <path>`
//! to write a `BENCH_weighted.json` artifact (flag distinct from the other
//! bench binaries', so `cargo bench` can pass all of them to every binary).

use sciborq_columnar::{
    Column, CompiledPredicate, DataType, Field, Partitioning, Predicate, RecordBatch, Schema,
    SelectionVector, Table, Value,
};
use sciborq_core::{Impression, SamplingPolicy};
use sciborq_stats::{Estimate, WeightedEstimator, WeightedObservation};
use std::fmt::Write as _;
use std::time::Instant;

const FULL_ROWS: usize = 10_000_000;
const QUICK_ROWS: usize = 200_000;

fn quick_mode() -> bool {
    std::env::var("SCIBORQ_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// Bulk column construction (not per-row `Value` appends), so 10M-row
/// table setup does not dominate bench startup. The impression is treated
/// as a biased sample of a 100×-larger base table.
fn build_impression(rows: usize) -> Impression {
    let schema = Schema::shared(vec![
        Field::new("objid", DataType::Int64),
        Field::new("ra", DataType::Float64),
        Field::new("dec", DataType::Float64),
        Field::nullable("r_mag", DataType::Float64),
        Field::new("class", DataType::Utf8),
    ])
    .unwrap();
    let classes = ["GALAXY", "STAR", "QSO"];
    let hash = |i: usize| {
        ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % 1_000_000) as f64 / 1_000_000.0
    };
    let objid = Column::from_i64((0..rows as i64).collect());
    let ra_values: Vec<f64> = (0..rows).map(|i| (i % 3600) as f64 / 10.0).collect();
    let dec = Column::from_f64((0..rows).map(|i| hash(i) * 180.0 - 90.0).collect());
    let mut r_mag = Column::with_capacity(DataType::Float64, rows);
    for i in 0..rows {
        let v = if i % 17 == 0 {
            Value::Null
        } else {
            Value::Float64(14.0 + 10.0 * hash(i))
        };
        r_mag.push(&v).unwrap();
    }
    let class = Column::from_strings((0..rows).map(|i| classes[i % 3]));
    // skewed interest weights: the 180°–190° focal band is ~8× more
    // interesting than the background, like a focused workload's KDE
    let weights: Vec<f64> = ra_values
        .iter()
        .enumerate()
        .map(|(i, ra)| {
            let focal = if (180.0..190.0).contains(ra) {
                8.0
            } else {
                1.0
            };
            focal * (0.5 + hash(i))
        })
        .collect();
    let ra = Column::from_f64(ra_values);
    let batch = RecordBatch::new(schema, vec![objid, ra, dec, r_mag, class]).unwrap();
    let t = Table::from_batch("photoobj", batch);
    let source_rows = rows as u64 * 100;
    // normaliser: the weights of the observed base tuples, extrapolated
    // from the retained sample's mean weight
    let total_observed_weight = weights.iter().sum::<f64>() / rows as f64 * source_rows as f64;
    Impression::new(
        "photoobj.layer1.biased",
        "photoobj",
        t,
        weights,
        total_observed_weight,
        source_rows,
        SamplingPolicy::biased(["ra"]),
        1,
    )
    .unwrap()
}

/// The pre-streamed estimator path, reproduced verbatim: zero-extended
/// observations over every impression row with a binary search per row.
fn legacy_count_estimate(imp: &Impression, selection: &SelectionVector) -> Estimate {
    let observations: Vec<WeightedObservation> = (0..imp.row_count())
        .map(|i| WeightedObservation {
            value: if selection.contains(i) { 1.0 } else { 0.0 },
            probability: imp.selection_probability(i),
        })
        .collect();
    let mut est = WeightedEstimator::estimate_total(&observations).expect("valid probabilities");
    if !selection.is_empty() {
        est.sample_size = selection.len();
    }
    est
}

/// The pre-streamed SUM path: same shape, values gathered where selected.
fn legacy_sum_estimate(imp: &Impression, column: &str, selection: &SelectionVector) -> Estimate {
    let col = imp.data().column(column).expect("bench column exists");
    let observations: Vec<WeightedObservation> = (0..imp.row_count())
        .map(|i| {
            let value = if selection.contains(i) {
                col.get_f64(i).unwrap_or(0.0)
            } else {
                0.0
            };
            WeightedObservation {
                value,
                probability: imp.selection_probability(i),
            }
        })
        .collect();
    let mut est = WeightedEstimator::estimate_total(&observations).expect("valid probabilities");
    if !selection.is_empty() {
        est.sample_size = selection.len();
    }
    est
}

/// Iterations per case, set once in `main` (more in quick mode, fewer at
/// the 10M-row full scale where each legacy iteration allocates an
/// observation per impression row).
static ITERS: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(9);

fn time_ns(mut f: impl FnMut() -> u64) -> f64 {
    let iters = ITERS.load(std::sync::atomic::Ordering::Relaxed);
    std::hint::black_box(f());
    let mut sink = 0u64;
    let start = Instant::now();
    for _ in 0..iters {
        sink = sink.wrapping_add(f());
    }
    let elapsed = start.elapsed().as_nanos() as f64 / iters as f64;
    std::hint::black_box(sink);
    elapsed
}

struct BenchRow {
    name: &'static str,
    legacy_ns: Option<f64>,
    selection_ns: f64,
    streamed_ns: f64,
}

impl BenchRow {
    fn legacy_speedup(&self) -> Option<f64> {
        self.legacy_ns.map(|l| l / self.streamed_ns.max(1.0))
    }
    fn selection_speedup(&self) -> f64 {
        self.selection_ns / self.streamed_ns.max(1.0)
    }
}

fn assert_estimates_bit_equal(a: &Estimate, b: &Estimate, context: &str) {
    assert_eq!(
        a.value.to_bits(),
        b.value.to_bits(),
        "estimate value diverges: {context}"
    );
    assert_eq!(
        a.standard_error.to_bits(),
        b.standard_error.to_bits(),
        "standard error diverges: {context}"
    );
    assert_eq!(
        a.sample_size, b.sample_size,
        "sample size diverges: {context}"
    );
}

/// The legacy path materialises its zero-valued draws, so its Welford
/// moments take a different (mathematically equal) route to the variance
/// than the zero-skipping paths: point estimates stay bit-identical, the
/// standard error agrees to rounding.
fn assert_estimates_equivalent(a: &Estimate, b: &Estimate, context: &str) {
    assert_eq!(
        a.value.to_bits(),
        b.value.to_bits(),
        "estimate value diverges: {context}"
    );
    assert!(
        (a.standard_error - b.standard_error).abs()
            <= 1e-9 * (1.0 + a.standard_error.abs().max(b.standard_error.abs())),
        "standard error diverges: {context}: {} vs {}",
        a.standard_error,
        b.standard_error
    );
    assert_eq!(
        a.sample_size, b.sample_size,
        "sample size diverges: {context}"
    );
}

/// Cross-check every path — legacy, fallback, streamed, sharded streamed —
/// before any timing: bit-identical where both paths fold the same pushes,
/// equivalent-to-rounding against the zero-materialising legacy path.
/// Panics on divergence.
fn verify(imp: &Impression, predicate: &Predicate, compiled: &CompiledPredicate) {
    let table = imp.data();
    let probs = imp.selection_probabilities();
    let oracle_sel = predicate.evaluate(table).expect("oracle evaluates");
    let fast_sel = compiled.evaluate(table).expect("kernels evaluate");
    assert_eq!(oracle_sel, fast_sel, "kernel selection vs oracle");

    let legacy = legacy_count_estimate(imp, &oracle_sel);
    let fallback = imp.estimate_count(&oracle_sel).expect("fallback count");
    let (count_sketch, _) = compiled.count_weighted(table, probs).expect("fused count");
    let streamed = imp
        .estimate_count_weighted(&count_sketch)
        .expect("streamed count");
    assert_estimates_equivalent(&legacy, &fallback, "legacy vs fallback COUNT");
    assert_estimates_bit_equal(&fallback, &streamed, "fallback vs streamed COUNT");

    let legacy = legacy_sum_estimate(imp, "r_mag", &oracle_sel);
    let fallback = imp
        .estimate_sum("r_mag", &oracle_sel)
        .expect("fallback sum");
    let (agg_sketch, _) = compiled
        .filter_weighted_moments(table, "r_mag", probs)
        .expect("fused moments");
    let streamed = imp
        .estimate_sum_weighted(&agg_sketch)
        .expect("streamed sum");
    assert_estimates_equivalent(&legacy, &fallback, "legacy vs fallback SUM");
    assert_estimates_bit_equal(&fallback, &streamed, "fallback vs streamed SUM");

    let fallback = imp
        .estimate_avg("r_mag", &oracle_sel)
        .expect("fallback avg");
    let streamed = imp
        .estimate_avg_weighted(&agg_sketch)
        .expect("streamed avg");
    assert_estimates_bit_equal(&fallback, &streamed, "fallback vs streamed AVG");

    for shards in [2usize, 4] {
        let parts = Partitioning::even(table.row_count(), shards);
        let (sharded, _) = compiled
            .count_weighted_partitioned(table, probs, &parts)
            .expect("sharded fused count");
        assert_eq!(
            sharded, count_sketch,
            "sharded count sketch diverges at {shards} shards"
        );
        let (sharded, _) = compiled
            .filter_weighted_moments_partitioned(table, "r_mag", probs, &parts)
            .expect("sharded fused moments");
        assert_eq!(
            sharded, agg_sketch,
            "sharded moment sketch diverges at {shards} shards"
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--weighted-json-out" {
            json_out = it.next().cloned();
        } else if let Some(path) = arg.strip_prefix("--weighted-json-out=") {
            json_out = Some(path.to_owned());
        } else if arg == "--json-out" || arg == "--parallel-json-out" || arg == "--serving-json-out"
        {
            // other bench binaries' flags: consume their values
            it.next();
        }
        // remaining flags (e.g. cargo bench's `--bench`) are ignored
    }

    let quick = quick_mode();
    let rows_n = if quick { QUICK_ROWS } else { FULL_ROWS };
    let iters: u32 = if quick { 9 } else { 3 };
    ITERS.store(iters, std::sync::atomic::Ordering::Relaxed);
    let imp = build_impression(rows_n);
    let table = imp.data();
    let schema = table.schema();
    let probs = imp.selection_probabilities();
    println!(
        "weighted_scan: selection-based vs streamed Hansen–Hurwitz estimation \
         on a {}-row biased impression ({iters} iters/case{})\n",
        imp.row_count(),
        if quick { ", quick mode" } else { "" }
    );

    // 50% selectivity — the selection path materialises ~100k row ids
    let range = Predicate::between("ra", 90.0, 270.0);
    // ~1.5% selectivity through candidate-list refinement
    let cone = Predicate::between("ra", 180.0, 190.0)
        .and(Predicate::between("dec", -5.0, 5.0))
        .and(Predicate::lt("r_mag", 20.0));

    // --- verification before any timing ------------------------------------
    for predicate in [&range, &cone] {
        let compiled = CompiledPredicate::compile(predicate, schema).expect("compiles");
        verify(&imp, predicate, &compiled);
    }
    println!(
        "bit-identity verified: legacy selection path == selection fallback == \
         streamed kernels (serial and sharded)\n"
    );

    let mut rows: Vec<BenchRow> = Vec::new();

    for (name, predicate) in [
        ("weighted_count", &range),
        ("weighted_count_refined", &cone),
    ] {
        let compiled = CompiledPredicate::compile(predicate, schema).expect("compiles");
        let legacy_ns = time_ns(|| {
            let sel = compiled.evaluate(table).expect("kernels");
            legacy_count_estimate(&imp, &sel).sample_size as u64
        });
        let selection_ns = time_ns(|| {
            let sel = compiled.evaluate(table).expect("kernels");
            imp.estimate_count(&sel).expect("fallback").sample_size as u64
        });
        let streamed_ns = time_ns(|| {
            let (sketch, _) = compiled.count_weighted(table, probs).expect("fused");
            imp.estimate_count_weighted(&sketch)
                .expect("streamed")
                .sample_size as u64
        });
        rows.push(BenchRow {
            name,
            legacy_ns: Some(legacy_ns),
            selection_ns,
            streamed_ns,
        });
    }

    for (name, predicate) in [("weighted_sum", &range), ("weighted_sum_refined", &cone)] {
        let compiled = CompiledPredicate::compile(predicate, schema).expect("compiles");
        let legacy_ns = time_ns(|| {
            let sel = compiled.evaluate(table).expect("kernels");
            legacy_sum_estimate(&imp, "r_mag", &sel).sample_size as u64
        });
        let selection_ns = time_ns(|| {
            let sel = compiled.evaluate(table).expect("kernels");
            imp.estimate_sum("r_mag", &sel)
                .expect("fallback")
                .sample_size as u64
        });
        let streamed_ns = time_ns(|| {
            let (sketch, _) = compiled
                .filter_weighted_moments(table, "r_mag", probs)
                .expect("fused");
            imp.estimate_sum_weighted(&sketch)
                .expect("streamed")
                .sample_size as u64
        });
        rows.push(BenchRow {
            name,
            legacy_ns: Some(legacy_ns),
            selection_ns,
            streamed_ns,
        });
    }

    // AVG has no distinct legacy shape (it always walked only the selected
    // rows); the win is skipping the selection materialisation entirely.
    {
        let compiled = CompiledPredicate::compile(&range, schema).expect("compiles");
        let selection_ns = time_ns(|| {
            let sel = compiled.evaluate(table).expect("kernels");
            imp.estimate_avg("r_mag", &sel)
                .expect("fallback")
                .sample_size as u64
        });
        let streamed_ns = time_ns(|| {
            let (sketch, _) = compiled
                .filter_weighted_moments(table, "r_mag", probs)
                .expect("fused");
            imp.estimate_avg_weighted(&sketch)
                .expect("streamed")
                .sample_size as u64
        });
        rows.push(BenchRow {
            name: "weighted_avg",
            legacy_ns: None,
            selection_ns,
            streamed_ns,
        });
    }

    // --- report ------------------------------------------------------------
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "benchmark", "legacy", "selection", "streamed", "leg.spd", "sel.spd"
    );
    for row in &rows {
        println!(
            "{:<24} {:>10} {:>10.0}µs {:>10.0}µs {:>8} {:>8.2}x",
            row.name,
            row.legacy_ns
                .map_or("-".to_owned(), |ns| format!("{:.0}µs", ns / 1e3)),
            row.selection_ns / 1e3,
            row.streamed_ns / 1e3,
            row.legacy_speedup()
                .map_or("-".to_owned(), |s| format!("{s:.2}x")),
            row.selection_speedup(),
        );
    }
    // the headline acceptance ratio: the *slowest* legacy-vs-streamed case,
    // so one lucky case cannot carry the number
    let headline = rows
        .iter()
        .filter_map(BenchRow::legacy_speedup)
        .fold(f64::INFINITY, f64::min);
    let fallback_best = rows
        .iter()
        .map(BenchRow::selection_speedup)
        .fold(0.0f64, f64::max);
    println!(
        "\nstreamed vs legacy selection path: ≥{headline:.2}x across all cases \
         (optimized fallback best: {fallback_best:.2}x)"
    );

    if let Some(path) = json_out {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"rows\": {rows_n},");
        let _ = writeln!(json, "  \"iterations\": {iters},");
        let _ = writeln!(json, "  \"quick_mode\": {quick},");
        let _ = writeln!(json, "  \"source_rows\": {},", rows_n as u64 * 100);
        let _ = writeln!(json, "  \"bit_identical\": true,");
        let _ = writeln!(json, "  \"selection_vs_streamed_speedup\": {headline:.2},");
        let _ = writeln!(
            json,
            "  \"optimized_fallback_vs_streamed_best_speedup\": {fallback_best:.2},"
        );
        json.push_str("  \"benchmarks\": [\n");
        for (i, row) in rows.iter().enumerate() {
            let _ = write!(
                json,
                "    {{\"name\": \"{}\", \"legacy_selection_ns\": {}, \"selection_ns\": {:.0}, \
                 \"streamed_ns\": {:.0}, \"legacy_speedup\": {}, \"selection_speedup\": {:.2}}}",
                row.name,
                row.legacy_ns
                    .map_or("null".to_owned(), |ns| format!("{ns:.0}")),
                row.selection_ns,
                row.streamed_ns,
                row.legacy_speedup()
                    .map_or("null".to_owned(), |s| format!("{s:.2}")),
                row.selection_speedup(),
            );
            json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write bench summary");
        println!("wrote summary to {path}");
    }
}
