//! Substrate micro-benchmarks: predicate scans, aggregates and FK joins on
//! the columnar storage layer (the pieces whose cost model underlies the
//! runtime bounds of E10).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sciborq_bench::{build_dataset, Scale};
use sciborq_columnar::{
    compute_aggregate, hash_join_index, AggregateKind, JoinType, Predicate, SelectionVector,
};

fn bench_columnar(c: &mut Criterion) {
    let dataset = build_dataset(Scale::Quick);
    let fact = dataset.catalog.table("photoobj").expect("fact");
    let fact = fact.read();
    let dim = dataset.catalog.table("field").expect("dim");
    let dim = dim.read();
    let rows = fact.row_count() as u64;

    let mut group = c.benchmark_group("columnar");
    group.throughput(Throughput::Elements(rows));

    let range = Predicate::between("ra", 180.0, 190.0);
    group.bench_function("range_scan", |b| {
        b.iter(|| black_box(range.evaluate(&fact).expect("scan").len()))
    });

    let conjunction = Predicate::between("ra", 180.0, 190.0)
        .and(Predicate::between("dec", -5.0, 5.0))
        .and(Predicate::lt("r_mag", 20.0));
    group.bench_function("conjunctive_scan", |b| {
        b.iter(|| black_box(conjunction.evaluate(&fact).expect("scan").len()))
    });

    let all = SelectionVector::all(fact.row_count());
    group.bench_function("avg_aggregate", |b| {
        b.iter(|| {
            compute_aggregate(&fact, Some("r_mag"), AggregateKind::Avg, black_box(&all))
                .expect("aggregate")
                .value
        })
    });

    group.bench_function("fk_hash_join", |b| {
        b.iter(|| {
            hash_join_index(&fact, "field_id", &dim, "field_id", JoinType::Inner, &all)
                .expect("join")
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_columnar);
criterion_main!(benches);
