//! Per-query execution traces and the bounded ring that retains them.
//!
//! A [`QueryTrace`] is the structured story of one bounded query: how
//! admission went (if the query passed through the serving front end), what
//! each escalation level cost and achieved, how the scan was partitioned,
//! and whether the final answer honoured its bounds. Traces are built by
//! the engine behind the `collect_traces` config knob, attached to answers,
//! and retained in a [`TraceRing`] on the session for the `trace` protocol
//! command.
//!
//! Levels are identified by name (`"layer-0"`, `"base"`) rather than by the
//! core crate's `EvaluationLevel` enum so this crate stays dependency-free.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Duration;

use crate::metrics::write_json_string;

/// How the serving front end admitted a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionTrace {
    /// Admission outcome: `"admitted"` or `"downgraded"`. (Shed queries
    /// never execute, so they never acquire a trace.)
    pub outcome: String,
    /// Time spent blocked on the admission queue before dispatch.
    pub queue_wait: Duration,
    /// The row cost the admission controller charged against the global
    /// budget.
    pub cost_rows: u64,
}

/// One escalation level's measured contribution to a query.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelTrace {
    /// Level name (`"layer-N"` or `"base"`).
    pub level: String,
    /// Rows scanned at this level (merged across repeated passes).
    pub rows_scanned: u64,
    /// Wall time spent scanning this level.
    pub elapsed: Duration,
    /// Number of parallel shards the scan was partitioned into.
    pub shards: usize,
    /// The relative error the estimate achieved at this level, when an
    /// estimate and interval existed (`None` for selections and failed
    /// estimates).
    pub relative_error: Option<f64>,
    /// Whether this level's estimate satisfied the requested error bound.
    pub error_bound_met: bool,
}

/// One fault, recovery or degradation event observed while answering a
/// query. Events are recorded even when injection is compiled out — real
/// panics take the same recovery paths as injected ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// The seam where the event happened (`"scan.shard"`,
    /// `"engine.level"`, ...).
    pub site: String,
    /// What happened at the seam.
    pub kind: FaultEventKind,
}

/// The classes of [`FaultEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEventKind {
    /// A fault was absorbed and fully recovered from (e.g. a panicking
    /// shard scan redone serially); the answer is unaffected.
    Recovery,
    /// A fault forced the answer onto the degradation ladder (e.g. an
    /// escalation level skipped); the answer carries `degraded: true`.
    Degradation,
}

impl FaultEventKind {
    /// Stable wire name of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultEventKind::Recovery => "recovery",
            FaultEventKind::Degradation => "degradation",
        }
    }
}

/// The structured execution trace of one bounded query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// The query, rendered for humans.
    pub query: String,
    /// Admission outcome and queue wait, when the query arrived through the
    /// serving front end (`None` for direct session calls).
    pub admission: Option<AdmissionTrace>,
    /// Per-level measurements, in escalation order.
    pub levels: Vec<LevelTrace>,
    /// The parallelism the engine partitioned scans for.
    pub parallelism: usize,
    /// The level that produced the returned answer.
    pub final_level: String,
    /// Number of escalations taken (levels beyond the first).
    pub escalations: usize,
    /// Whether the returned answer met the requested error bound.
    pub error_bound_met: bool,
    /// Whether the returned answer met the requested time budget.
    pub time_bound_met: bool,
    /// Total wall time from admission to answer (excluding queue wait).
    pub elapsed: Duration,
    /// The relative error bound the query requested, when finite.
    pub requested_error: Option<f64>,
    /// The wall-clock budget the query requested, if any.
    pub time_budget: Option<Duration>,
    /// Whether the answer was degraded by a fault (see
    /// [`FaultEventKind::Degradation`]).
    pub degraded: bool,
    /// Faults, recoveries and degradations observed during execution, in
    /// occurrence order.
    pub faults: Vec<FaultEvent>,
}

impl QueryTrace {
    /// Render this trace as one compact JSON object (hand-rolled; this
    /// crate carries no JSON dependency). Non-finite relative errors render
    /// as `null`, matching the serving codec's RFC 8259 behaviour.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"query\":");
        write_json_string(&self.query, &mut out);
        match &self.admission {
            Some(adm) => {
                out.push_str(",\"admission\":{\"outcome\":");
                write_json_string(&adm.outcome, &mut out);
                let _ = write!(
                    out,
                    ",\"queue_wait_micros\":{},\"cost_rows\":{}}}",
                    adm.queue_wait.as_micros(),
                    adm.cost_rows
                );
            }
            None => out.push_str(",\"admission\":null"),
        }
        out.push_str(",\"levels\":[");
        for (i, level) in self.levels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"level\":");
            write_json_string(&level.level, &mut out);
            let _ = write!(
                out,
                ",\"rows_scanned\":{},\"elapsed_micros\":{},\"shards\":{},\"relative_error\":",
                level.rows_scanned,
                level.elapsed.as_micros(),
                level.shards
            );
            push_json_f64(level.relative_error, &mut out);
            let _ = write!(out, ",\"error_bound_met\":{}}}", level.error_bound_met);
        }
        out.push_str("],\"parallelism\":");
        let _ = write!(out, "{}", self.parallelism);
        out.push_str(",\"final_level\":");
        write_json_string(&self.final_level, &mut out);
        let _ = write!(
            out,
            ",\"escalations\":{},\"error_bound_met\":{},\"time_bound_met\":{},\"elapsed_micros\":{}",
            self.escalations,
            self.error_bound_met,
            self.time_bound_met,
            self.elapsed.as_micros()
        );
        out.push_str(",\"requested_error\":");
        push_json_f64(self.requested_error, &mut out);
        out.push_str(",\"time_budget_micros\":");
        match self.time_budget {
            Some(budget) => {
                let _ = write!(out, "{}", budget.as_micros());
            }
            None => out.push_str("null"),
        }
        let _ = write!(out, ",\"degraded\":{}", self.degraded);
        out.push_str(",\"faults\":[");
        for (i, event) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"site\":");
            write_json_string(&event.site, &mut out);
            out.push_str(",\"kind\":");
            write_json_string(event.kind.as_str(), &mut out);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn push_json_f64(value: Option<f64>, out: &mut String) {
    match value {
        Some(v) if v.is_finite() => {
            let _ = write!(out, "{v}");
        }
        _ => out.push_str("null"),
    }
}

/// A bounded ring buffer of recent query traces.
///
/// Recording evicts the oldest trace once the ring is full; readout returns
/// the most recent traces first. Both are one mutex acquisition — traces
/// are recorded once per query, never per row.
#[derive(Debug)]
pub struct TraceRing {
    capacity: usize,
    inner: Mutex<VecDeque<QueryTrace>>,
}

impl TraceRing {
    /// A ring retaining at most `capacity` traces.
    ///
    /// # Panics
    /// When `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring capacity must be positive");
        TraceRing {
            capacity,
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Record a trace, evicting the oldest if the ring is full.
    pub fn record(&self, trace: QueryTrace) {
        let mut ring = self.inner.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// The most recent `limit` traces, newest first.
    pub fn recent(&self, limit: usize) -> Vec<QueryTrace> {
        let ring = self.inner.lock().unwrap();
        ring.iter().rev().take(limit).cloned().collect()
    }

    /// Number of traces currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether the ring holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The maximum number of traces this ring retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(query: &str) -> QueryTrace {
        QueryTrace {
            query: query.to_owned(),
            admission: Some(AdmissionTrace {
                outcome: "admitted".to_owned(),
                queue_wait: Duration::from_micros(12),
                cost_rows: 4_096,
            }),
            levels: vec![LevelTrace {
                level: "layer-0".to_owned(),
                rows_scanned: 1_000,
                elapsed: Duration::from_micros(250),
                shards: 2,
                relative_error: Some(0.04),
                error_bound_met: true,
            }],
            parallelism: 2,
            final_level: "layer-0".to_owned(),
            escalations: 0,
            error_bound_met: true,
            time_bound_met: true,
            elapsed: Duration::from_micros(300),
            requested_error: Some(0.05),
            time_budget: Some(Duration::from_millis(10)),
            degraded: false,
            faults: Vec::new(),
        }
    }

    #[test]
    fn ring_evicts_oldest_and_reads_newest_first() {
        let ring = TraceRing::new(3);
        assert!(ring.is_empty());
        for i in 0..5 {
            ring.record(trace(&format!("q{i}")));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.capacity(), 3);
        let recent = ring.recent(2);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].query, "q4");
        assert_eq!(recent[1].query, "q3");
        // asking for more than retained returns all, newest first
        let all = ring.recent(10);
        assert_eq!(all.len(), 3);
        assert_eq!(all[2].query, "q2");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_ring_panics() {
        TraceRing::new(0);
    }

    #[test]
    fn trace_renders_json() {
        let json = trace("count(photoobj)").to_json();
        assert!(json.contains("\"query\":\"count(photoobj)\""), "{json}");
        assert!(json.contains("\"outcome\":\"admitted\""), "{json}");
        assert!(json.contains("\"queue_wait_micros\":12"), "{json}");
        assert!(json.contains("\"level\":\"layer-0\""), "{json}");
        assert!(json.contains("\"relative_error\":0.04"), "{json}");
        assert!(json.contains("\"final_level\":\"layer-0\""), "{json}");
        assert!(json.contains("\"time_budget_micros\":10000"), "{json}");
        assert!(json.contains("\"degraded\":false"), "{json}");
        assert!(json.contains("\"faults\":[]"), "{json}");
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn trace_json_renders_fault_events() {
        let mut t = trace("q");
        t.degraded = true;
        t.faults = vec![
            FaultEvent {
                site: "scan.shard".to_owned(),
                kind: FaultEventKind::Recovery,
            },
            FaultEvent {
                site: "engine.level".to_owned(),
                kind: FaultEventKind::Degradation,
            },
        ];
        let json = t.to_json();
        assert!(json.contains("\"degraded\":true"), "{json}");
        assert!(
            json.contains("{\"site\":\"scan.shard\",\"kind\":\"recovery\"}"),
            "{json}"
        );
        assert!(
            json.contains("{\"site\":\"engine.level\",\"kind\":\"degradation\"}"),
            "{json}"
        );
    }

    #[test]
    fn trace_json_handles_absent_fields() {
        let mut t = trace("q");
        t.admission = None;
        t.requested_error = Some(f64::INFINITY);
        t.time_budget = None;
        t.levels[0].relative_error = None;
        let json = t.to_json();
        assert!(json.contains("\"admission\":null"), "{json}");
        assert!(json.contains("\"requested_error\":null"), "{json}");
        assert!(json.contains("\"time_budget_micros\":null"), "{json}");
        assert!(json.contains("\"relative_error\":null"), "{json}");
    }
}
