//! Deterministic fault injection for chaos testing (`fault-injection`
//! feature only).
//!
//! Production code marks its hot seams with named injection sites:
//!
//! ```ignore
//! #[cfg(feature = "fault-injection")]
//! sciborq_telemetry::fault_point!("scan.shard");
//! ```
//!
//! With the feature off the macro expands to nothing and this module is
//! not compiled at all, so release builds carry no fault-injection
//! symbols. With the feature on, each hit consults the installed
//! [`FaultPlan`]: a seedable, fully deterministic script of *panic here*,
//! *delay N ms here* and *return an error here* rules with nth-hit and
//! pseudo-random (but seed-reproducible) triggers. Chaos tests install a
//! plan, drive the system, and assert the recovery machinery held.
//!
//! The registry is process-global (fault points are reached from worker
//! threads that carry no handle to pass a plan through); tests that
//! install plans must serialise themselves.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// What an injected fault does at its site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Panic at the site (exercises `catch_unwind` isolation).
    Panic,
    /// Sleep for the given duration (exercises deadlines and timeouts).
    Delay(Duration),
    /// Ask the site to return its typed error (only honoured by
    /// error-aware sites; plain sites treat this as a panic so a storm is
    /// never silently ignored).
    Error,
}

/// When a rule fires, measured in per-site hit counts (1-based).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire on every hit.
    Always,
    /// Fire on exactly the nth hit of the site.
    Nth(u64),
    /// Fire on every nth hit of the site.
    EveryNth(u64),
    /// Fire pseudo-randomly with the given probability; the decision is a
    /// pure function of `(plan seed, site, hit number)`, so a fixed seed
    /// replays the identical storm.
    Probability(f64),
}

/// One site-matching rule of a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// The site the rule applies to: an exact site name, or `"*"` for
    /// every site.
    pub site: String,
    /// What happens when the rule fires.
    pub kind: FaultKind,
    /// When the rule fires.
    pub trigger: Trigger,
}

/// A deterministic script of faults, installed process-wide with
/// [`install`]. The first matching rule wins at each hit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for the [`Trigger::Probability`] decisions.
    pub seed: u64,
    /// Rules, consulted in order.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Add a panic rule.
    pub fn panic_at(mut self, site: &str, trigger: Trigger) -> Self {
        self.rules.push(FaultRule {
            site: site.to_owned(),
            kind: FaultKind::Panic,
            trigger,
        });
        self
    }

    /// Add a delay rule.
    pub fn delay_at(mut self, site: &str, delay: Duration, trigger: Trigger) -> Self {
        self.rules.push(FaultRule {
            site: site.to_owned(),
            kind: FaultKind::Delay(delay),
            trigger,
        });
        self
    }

    /// Add an error-return rule.
    pub fn error_at(mut self, site: &str, trigger: Trigger) -> Self {
        self.rules.push(FaultRule {
            site: site.to_owned(),
            kind: FaultKind::Error,
            trigger,
        });
        self
    }

    /// A randomized (but seed-deterministic) storm: every site panics with
    /// probability `p_panic` and stalls for `delay` with probability
    /// `p_delay` on each hit.
    pub fn storm(seed: u64, p_panic: f64, p_delay: f64, delay: Duration) -> Self {
        FaultPlan::new(seed)
            .panic_at("*", Trigger::Probability(p_panic))
            .delay_at("*", delay, Trigger::Probability(p_delay))
    }
}

#[derive(Debug, Default)]
struct ActiveState {
    plan: Option<FaultPlan>,
    hits: BTreeMap<String, u64>,
    injected: BTreeMap<String, u64>,
}

fn state() -> &'static Mutex<ActiveState> {
    static STATE: OnceLock<Mutex<ActiveState>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(ActiveState::default()))
}

/// Install `plan` process-wide, resetting all hit and injection counts.
pub fn install(plan: FaultPlan) {
    let mut s = state().lock().unwrap_or_else(PoisonError::into_inner);
    s.plan = Some(plan);
    s.hits.clear();
    s.injected.clear();
}

/// Remove the installed plan (fault points become pass-through) and reset
/// all counts.
pub fn clear() {
    let mut s = state().lock().unwrap_or_else(PoisonError::into_inner);
    s.plan = None;
    s.hits.clear();
    s.injected.clear();
}

/// How many times `site` has been reached since the last [`install`].
pub fn hits(site: &str) -> u64 {
    let s = state().lock().unwrap_or_else(PoisonError::into_inner);
    s.hits.get(site).copied().unwrap_or(0)
}

/// How many faults have been injected at `site` since the last
/// [`install`].
pub fn injected(site: &str) -> u64 {
    let s = state().lock().unwrap_or_else(PoisonError::into_inner);
    s.injected.get(site).copied().unwrap_or(0)
}

/// Total faults injected across all sites since the last [`install`].
pub fn total_injected() -> u64 {
    let s = state().lock().unwrap_or_else(PoisonError::into_inner);
    s.injected.values().sum()
}

/// splitmix64: a tiny, high-quality mixer for the probability trigger.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn site_hash(site: &str) -> u64 {
    // FNV-1a; any stable hash works, the mixer does the heavy lifting.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in site.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn trigger_fires(trigger: Trigger, seed: u64, site: &str, hit: u64) -> bool {
    match trigger {
        Trigger::Always => true,
        Trigger::Nth(n) => hit == n,
        Trigger::EveryNth(n) => n > 0 && hit.is_multiple_of(n),
        Trigger::Probability(p) => {
            let sample =
                mix(seed ^ site_hash(site) ^ hit.wrapping_mul(0x9E37)) as f64 / u64::MAX as f64;
            sample < p
        }
    }
}

/// Record a hit at `site` and return the fault to inject, if any. Exposed
/// for the `fault_point!` macro; call sites should use the macro.
pub fn evaluate(site: &str) -> Option<FaultKind> {
    let mut s = state().lock().unwrap_or_else(PoisonError::into_inner);
    s.plan.as_ref()?;
    let hit = {
        let entry = s.hits.entry(site.to_owned()).or_insert(0);
        *entry += 1;
        *entry
    };
    let plan = s.plan.as_ref()?;
    let fired = plan
        .rules
        .iter()
        .find(|r| {
            (r.site == site || r.site == "*") && trigger_fires(r.trigger, plan.seed, site, hit)
        })
        .map(|r| r.kind);
    if fired.is_some() {
        *s.injected.entry(site.to_owned()).or_insert(0) += 1;
    }
    fired
}

/// Act on the plan at a plain (non-error-aware) site: panic or delay as
/// scripted. An `Error` rule panics too — a storm must never be silently
/// swallowed by a site that cannot return errors.
pub fn fire(site: &str) {
    match evaluate(site) {
        Some(FaultKind::Panic) | Some(FaultKind::Error) => {
            panic!("injected fault at {site}");
        }
        Some(FaultKind::Delay(d)) => std::thread::sleep(d),
        None => {}
    }
}

/// Act on the plan at an error-aware site: panic or delay as scripted, or
/// return `true` when the site should return its typed error.
pub fn error_requested(site: &str) -> bool {
    match evaluate(site) {
        Some(FaultKind::Panic) => panic!("injected fault at {site}"),
        Some(FaultKind::Delay(d)) => {
            std::thread::sleep(d);
            false
        }
        Some(FaultKind::Error) => true,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The registry is process-global; tests that install plans serialise.
    static SERIAL: StdMutex<()> = StdMutex::new(());

    #[test]
    fn nth_hit_rule_fires_exactly_once() {
        let _guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        install(FaultPlan::new(7).panic_at("scan.shard", Trigger::Nth(3)));
        assert_eq!(evaluate("scan.shard"), None);
        assert_eq!(evaluate("scan.shard"), None);
        assert_eq!(evaluate("scan.shard"), Some(FaultKind::Panic));
        assert_eq!(evaluate("scan.shard"), None);
        assert_eq!(hits("scan.shard"), 4);
        assert_eq!(injected("scan.shard"), 1);
        assert_eq!(total_injected(), 1);
        clear();
    }

    #[test]
    fn wildcard_and_every_nth_rules_match_any_site() {
        let _guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        install(FaultPlan::new(1).error_at("*", Trigger::EveryNth(2)));
        assert_eq!(evaluate("a"), None);
        assert_eq!(evaluate("a"), Some(FaultKind::Error));
        assert_eq!(evaluate("b"), None);
        assert_eq!(evaluate("b"), Some(FaultKind::Error));
        clear();
        assert_eq!(evaluate("a"), None, "cleared plan injects nothing");
        assert_eq!(hits("a"), 0, "clear resets counts");
    }

    #[test]
    fn probability_trigger_is_seed_deterministic() {
        let _guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        let run = |seed: u64| -> Vec<bool> {
            install(FaultPlan::storm(seed, 0.3, 0.0, Duration::from_millis(1)));
            let out = (0..64)
                .map(|_| evaluate("engine.level").is_some())
                .collect();
            clear();
            out
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed must replay the same storm");
        assert_ne!(a, c, "different seeds should diverge");
        assert!(a.iter().any(|&f| f), "p=0.3 over 64 hits should fire");
        assert!(!a.iter().all(|&f| f), "p=0.3 should not always fire");
    }

    #[test]
    fn error_requested_distinguishes_kinds() {
        let _guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        install(
            FaultPlan::new(0)
                .error_at("session.query", Trigger::Nth(1))
                .delay_at("session.query", Duration::from_millis(1), Trigger::Nth(2)),
        );
        assert!(error_requested("session.query"));
        assert!(!error_requested("session.query"), "delay returns false");
        assert!(!error_requested("session.query"), "no rule, no error");
        clear();
    }

    #[test]
    #[should_panic(expected = "injected fault at scan.shard")]
    fn fire_panics_on_a_panic_rule() {
        // Deliberately not serialised via SERIAL: install/panic leaves the
        // guard poisoned; this test only needs its own plan installed last.
        let _guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        install(FaultPlan::new(0).panic_at("scan.shard", Trigger::Always));
        fire("scan.shard");
    }
}
