//! A level-filtered structured logger writing `key=value` lines to stderr.
//!
//! One line per event: `ts=<unix-micros> level=<level> event=<name>`
//! followed by caller-supplied fields. Values containing spaces, quotes or
//! `=` are double-quoted with minimal escaping, so lines stay trivially
//! machine-splittable. The whole line is built in one `String` and emitted
//! with a single `eprintln!`, so concurrent workers never interleave
//! mid-line.

use std::fmt;
use std::str::FromStr;
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most to least severe. A message is emitted when its level
/// is at or above the logger's configured threshold (`Error` always,
/// `Debug` only when asked for).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Unrecoverable or dropped work.
    Error,
    /// Degraded but continuing.
    Warn,
    /// Lifecycle events (startup, shutdown, totals).
    Info,
    /// Per-query chatter.
    Debug,
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        })
    }
}

impl FromStr for LogLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "error" => Ok(LogLevel::Error),
            "warn" => Ok(LogLevel::Warn),
            "info" => Ok(LogLevel::Info),
            "debug" => Ok(LogLevel::Debug),
            other => Err(format!(
                "unknown log level '{other}' (expected error|warn|info|debug)"
            )),
        }
    }
}

/// A logger filtered at a fixed level.
#[derive(Debug, Clone, Copy)]
pub struct Logger {
    level: LogLevel,
}

impl Logger {
    /// A logger emitting messages at or above `level`.
    pub fn new(level: LogLevel) -> Self {
        Logger { level }
    }

    /// The configured threshold.
    pub fn level(&self) -> LogLevel {
        self.level
    }

    /// Whether a message at `level` would be emitted.
    pub fn enabled(&self, level: LogLevel) -> bool {
        level <= self.level
    }

    /// Emit one `key=value` line for `event` with the given fields.
    pub fn log(&self, level: LogLevel, event: &str, fields: &[(&str, String)]) {
        if !self.enabled(level) {
            return;
        }
        eprintln!("{}", format_line(level, event, fields));
    }

    /// Emit at [`LogLevel::Error`].
    pub fn error(&self, event: &str, fields: &[(&str, String)]) {
        self.log(LogLevel::Error, event, fields);
    }

    /// Emit at [`LogLevel::Warn`].
    pub fn warn(&self, event: &str, fields: &[(&str, String)]) {
        self.log(LogLevel::Warn, event, fields);
    }

    /// Emit at [`LogLevel::Info`].
    pub fn info(&self, event: &str, fields: &[(&str, String)]) {
        self.log(LogLevel::Info, event, fields);
    }

    /// Emit at [`LogLevel::Debug`].
    pub fn debug(&self, event: &str, fields: &[(&str, String)]) {
        self.log(LogLevel::Debug, event, fields);
    }
}

fn format_line(level: LogLevel, event: &str, fields: &[(&str, String)]) -> String {
    let ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros())
        .unwrap_or(0);
    let mut line = format!("ts={ts} level={level} event={event}");
    for (key, value) in fields {
        line.push(' ');
        line.push_str(key);
        line.push('=');
        push_value(value, &mut line);
    }
    line
}

fn push_value(value: &str, out: &mut String) {
    let needs_quoting = value.is_empty() || value.contains([' ', '"', '=', '\n', '\t']);
    if !needs_quoting {
        out.push_str(value);
        return;
    }
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(LogLevel::Error < LogLevel::Warn);
        assert!(LogLevel::Warn < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Debug);
        assert_eq!("warn".parse::<LogLevel>(), Ok(LogLevel::Warn));
        assert!("loud".parse::<LogLevel>().is_err());
        assert_eq!(LogLevel::Debug.to_string(), "debug");
    }

    #[test]
    fn filtering_respects_threshold() {
        let log = Logger::new(LogLevel::Info);
        assert!(log.enabled(LogLevel::Error));
        assert!(log.enabled(LogLevel::Info));
        assert!(!log.enabled(LogLevel::Debug));
        assert_eq!(log.level(), LogLevel::Info);
    }

    #[test]
    fn lines_are_key_value_formatted() {
        let line = format_line(
            LogLevel::Info,
            "startup",
            &[
                ("table", "photoobj".to_owned()),
                ("msg", "ready to serve".to_owned()),
                ("threads", "4".to_owned()),
            ],
        );
        assert!(line.starts_with("ts="), "{line}");
        assert!(line.contains(" level=info event=startup "), "{line}");
        assert!(line.contains(" table=photoobj "), "{line}");
        // values with spaces are quoted
        assert!(line.contains(" msg=\"ready to serve\" "), "{line}");
        assert!(line.ends_with(" threads=4"), "{line}");
    }

    #[test]
    fn awkward_values_are_escaped() {
        let mut out = String::new();
        push_value("a=b \"c\"", &mut out);
        assert_eq!(out, "\"a=b \\\"c\\\"\"");
        let mut out = String::new();
        push_value("", &mut out);
        assert_eq!(out, "\"\"");
        let mut out = String::new();
        push_value("plain", &mut out);
        assert_eq!(out, "plain");
    }
}
