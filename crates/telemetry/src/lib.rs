//! # sciborq-telemetry
//!
//! The observability layer of the SciBORQ workspace: every signal the
//! engine, the shared-scan batch scheduler, the admission controller and
//! the serving front end emit flows through this crate.
//!
//! Three pillars, all hand-rolled over `std::sync` with **no external
//! dependencies** (the same discipline as the serving crate's JSON codec):
//!
//! * [`metrics`] — a process-wide [`MetricsRegistry`](metrics::MetricsRegistry)
//!   of atomic [`Counter`](metrics::Counter)s, [`Gauge`](metrics::Gauge)s
//!   and fixed-bucket latency [`Histogram`](metrics::Histogram)s with
//!   p50/p90/p99 readout. Recording is lock-free (one relaxed atomic add
//!   per observation); snapshots render to JSON for the `metrics` protocol
//!   command, the serving bench and CI artifacts.
//! * [`trace`] — structured per-query execution traces: a
//!   [`QueryTrace`](trace::QueryTrace) records the admission outcome and
//!   queue wait, each escalation level's measured rows / wall time /
//!   error-achieved, the partitioning decision, and the final bound
//!   verdicts. Traces ride on answers behind a config knob and are
//!   retained in a bounded [`TraceRing`](trace::TraceRing).
//! * [`log`] — a level-filtered [`Logger`](log::Logger) writing
//!   `key=value` lines to stderr.
//!
//! Telemetry is strictly observational: whether tracing or metrics are on
//! or off changes **no answer bits** (the workspace's standing bit-identity
//! contract extends to this crate, enforced by property tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "fault-injection")]
pub mod faults;
pub mod log;
pub mod metrics;
pub mod trace;

/// Mark a named fault-injection site.
///
/// With the `fault-injection` feature off (the default) every form
/// expands to nothing — zero code, zero symbols. With it on, each hit
/// consults the installed [`faults::FaultPlan`]:
///
/// * `fault_point!("site")` — panics or delays as scripted (an `Error`
///   rule panics too; plain sites cannot return errors).
/// * `fault_point!("site", |site| expr)` — additionally supports
///   error-return rules: when one fires, the enclosing function does
///   `return Err(ctor(site))`.
///
/// Call sites must themselves be gated with
/// `#[cfg(feature = "fault-injection")]` so no fault-injection symbols
/// are reachable in release builds (enforced by the `fault_discipline`
/// analyzer lint).
#[cfg(feature = "fault-injection")]
#[macro_export]
macro_rules! fault_point {
    ($site:expr) => {
        $crate::faults::fire($site);
    };
    ($site:expr, $err:expr) => {
        if $crate::faults::error_requested($site) {
            return Err(($err)($site));
        }
    };
}

/// Mark a named fault-injection site (no-op: the `fault-injection`
/// feature is off).
#[cfg(not(feature = "fault-injection"))]
#[macro_export]
macro_rules! fault_point {
    ($($tt:tt)*) => {};
}

pub use log::{LogLevel, Logger};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSummary, MetricValue, MetricsRegistry, MetricsSnapshot,
};
pub use trace::{AdmissionTrace, FaultEvent, FaultEventKind, LevelTrace, QueryTrace, TraceRing};
