//! The metrics registry: atomic counters, gauges and fixed-bucket latency
//! histograms with percentile readout.
//!
//! Handles are `Arc`s handed out by [`MetricsRegistry`]; callers register
//! once (a `BTreeMap` lookup under a mutex) and then record through the
//! cached handle with one relaxed atomic operation per observation, so the
//! hot path never takes a lock. [`MetricsRegistry::snapshot`] freezes the
//! whole registry into a [`MetricsSnapshot`] that renders to JSON — the
//! one implementation behind the `metrics` protocol command, the serving
//! bench's percentile report and the CI metrics artifact.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways (queue depths, in-flight
/// totals).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over non-negative integer observations
/// (canonically: latencies in microseconds).
///
/// Buckets are defined by ascending upper bounds (a 1–2–5 decade series by
/// default) plus an implicit overflow bucket; observation is one relaxed
/// atomic add, and percentiles are read out of the bucket counts with
/// linear interpolation inside the winning bucket. Percentiles are
/// therefore *bucketed approximations* — exact enough for latency
/// reporting, cheap enough to keep on every query.
#[derive(Debug)]
pub struct Histogram {
    /// Ascending inclusive upper bounds; observations above the last bound
    /// land in the overflow bucket.
    bounds: Vec<u64>,
    /// One bucket per bound plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram with the given ascending bucket upper bounds.
    ///
    /// # Panics
    /// When `bounds` is empty or not strictly ascending (a misconfigured
    /// metric is a programming error, not a runtime condition).
    pub fn new(bounds: Vec<u64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// The default latency histogram: a 1–2–5 series from 1 µs to 1000 s.
    pub fn latency_micros() -> Self {
        let mut bounds = Vec::new();
        let mut decade: u64 = 1;
        while decade <= 1_000_000_000 {
            for mult in [1, 2, 5] {
                bounds.push(decade * mult);
            }
            decade *= 10;
        }
        Histogram::new(bounds)
    }

    /// Record one observation.
    pub fn observe(&self, value: u64) {
        let idx = self.bounds.partition_point(|&bound| bound < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations recorded.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The approximate `p`-quantile (`p` in `[0, 1]`) of the observations,
    /// linearly interpolated inside the winning bucket. Returns 0 when the
    /// histogram is empty; observations beyond the last bound report the
    /// last bound (the histogram cannot know how far beyond they were).
    pub fn percentile(&self, p: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = (p.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &in_bucket) in counts.iter().enumerate() {
            if in_bucket == 0 {
                continue;
            }
            if seen + in_bucket >= rank {
                let hi = match self.bounds.get(idx) {
                    Some(&bound) => bound,
                    // overflow bucket: the last bound is the best statement
                    // the histogram can make
                    None => return *self.bounds.last().expect("bounds non-empty"),
                };
                let lo = if idx == 0 { 0 } else { self.bounds[idx - 1] };
                let into = (rank - seen) as f64 / in_bucket as f64;
                return lo + ((hi - lo) as f64 * into).round() as u64;
            }
            seen += in_bucket;
        }
        *self.bounds.last().expect("bounds non-empty")
    }

    /// Freeze this histogram into its summary form.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
        }
    }
}

/// A frozen histogram readout: count, sum and the standard percentiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Approximate median.
    pub p50: u64,
    /// Approximate 90th percentile.
    pub p90: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
}

/// A frozen metric value inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// A counter's value.
    Counter(u64),
    /// A gauge's value.
    Gauge(i64),
    /// A histogram's summary.
    Histogram(HistogramSummary),
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn flavour(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named registry of counters, gauges and histograms.
///
/// Registration is idempotent: asking for an existing name returns the
/// same underlying metric, so independent components can share a metric by
/// name. Asking for an existing name *as a different flavour* panics — two
/// components disagreeing about what a metric is can only be a bug.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().unwrap();
        let metric = metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())));
        match metric {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric '{name}' is a {}, not a counter", other.flavour()),
        }
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().unwrap();
        let metric = metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())));
        match metric {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric '{name}' is a {}, not a gauge", other.flavour()),
        }
    }

    /// Get or register the latency histogram `name` (1–2–5 microsecond
    /// buckets, see [`Histogram::latency_micros`]).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().unwrap();
        let metric = metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::latency_micros())));
        match metric {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric '{name}' is a {}, not a histogram", other.flavour()),
        }
    }

    /// Freeze every registered metric into a snapshot (name-sorted).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.lock().unwrap();
        let entries = metrics
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.summary()),
                };
                (name.clone(), value)
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

/// A point-in-time freeze of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, sorted by name.
    pub entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// The value of a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// The value of counter `name`, if it exists and is a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The value of gauge `name`, if it exists and is a gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The summary of histogram `name`, if it exists and is a histogram.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        match self.get(name)? {
            MetricValue::Histogram(h) => Some(*h),
            _ => None,
        }
    }

    /// Render the snapshot as one compact JSON object: counters and gauges
    /// as numbers, histograms as `{count, sum, p50, p90, p99}` objects.
    /// Hand-rolled (this crate carries no JSON dependency); metric names
    /// are escaped per RFC 8259.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(name, &mut out);
            out.push(':');
            match value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "{v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                        h.count, h.sum, h.p50, h.p90, h.p99
                    );
                }
            }
        }
        out.push('}');
        out
    }
}

pub(crate) fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        g.set(10);
        g.add(3);
        g.sub(5);
        assert_eq!(g.get(), 8);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = Histogram::new(vec![10, 100, 1_000]);
        for v in [1, 5, 9, 50, 70, 900] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1_035);
        // ranks 1..=3 land in the [0, 10] bucket, 4..=5 in (10, 100],
        // 6 in (100, 1000]
        assert!(h.percentile(0.50) <= 10, "p50 {}", h.percentile(0.50));
        assert!(
            h.percentile(0.75) > 10 && h.percentile(0.75) <= 100,
            "p75 {}",
            h.percentile(0.75)
        );
        assert!(h.percentile(1.0) > 100);
        // empty histogram reports zero
        assert_eq!(Histogram::new(vec![10]).percentile(0.5), 0);
        // overflow observations clamp to the last bound
        let h = Histogram::new(vec![10]);
        h.observe(1_000_000);
        assert_eq!(h.percentile(0.5), 10);
    }

    #[test]
    fn percentile_interpolates_within_a_bucket() {
        let h = Histogram::new(vec![100]);
        for _ in 0..100 {
            h.observe(50);
        }
        let p50 = h.percentile(0.50);
        assert!((49..=51).contains(&(p50 as i64)), "p50 {p50}");
    }

    #[test]
    fn latency_micros_covers_the_useful_range() {
        let h = Histogram::latency_micros();
        h.observe(1);
        h.observe(1_500);
        h.observe(2_000_000);
        assert_eq!(h.count(), 3);
        assert!(h.percentile(0.99) >= 1_000_000);
    }

    #[test]
    fn registry_shares_handles_by_name() {
        let reg = MetricsRegistry::new();
        reg.counter("served").inc();
        reg.counter("served").inc();
        assert_eq!(reg.counter("served").get(), 2);
        reg.gauge("depth").set(7);
        reg.histogram("lat_us").observe(42);

        let snap = reg.snapshot();
        assert_eq!(snap.counter("served"), Some(2));
        assert_eq!(snap.gauge("depth"), Some(7));
        assert_eq!(snap.histogram("lat_us").unwrap().count, 1);
        assert_eq!(snap.counter("missing"), None);
        // entries are name-sorted
        let names: Vec<&str> = snap.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["depth", "lat_us", "served"]);
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn flavour_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn snapshot_renders_json() {
        let reg = MetricsRegistry::new();
        reg.counter("engine.queries").add(3);
        reg.gauge("serve.queue_depth").set(-1);
        reg.histogram("serve.reply_micros").observe(100);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"engine.queries\":3"), "{json}");
        assert!(json.contains("\"serve.queue_depth\":-1"), "{json}");
        assert!(json.contains("\"count\":1"), "{json}");
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
