//! No-op derive macros backing the vendored serde stub.
//!
//! The stub `serde` crate blanket-implements its marker traits for every
//! type, so these derives have nothing to emit — they only need to *exist*
//! for `#[derive(Serialize, Deserialize)]` attributes to resolve. Both still
//! accept `#[serde(...)]` helper attributes so upstream-style annotations
//! would not break compilation if they appear later.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
