//! Offline vendored stub of `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s. A poisoned std lock (a panic while holding the guard) is
//! recovered with `into_inner`, matching parking_lot's semantics of simply
//! not having poisoning.

use std::fmt;
use std::sync::{self, LockResult};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[inline]
fn unpoison<G>(result: LockResult<G>) -> G {
    match result {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Non-poisoning reader-writer lock with parking_lot's API shape.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    #[inline]
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    #[inline]
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    #[inline]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.0.try_read().ok()
    }

    #[inline]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.0.try_write().ok()
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

/// Non-poisoning mutex with parking_lot's API shape.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    #[inline]
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}
