//! Offline vendored stub of `serde`.
//!
//! The SciBORQ workspace builds in an environment without crates.io access,
//! and the seed code only ever uses serde for `#[derive(Serialize,
//! Deserialize)]` annotations — no serializer backend (`serde_json`, bincode,
//! …) is present anywhere in the tree. This stub therefore provides:
//!
//! * marker traits [`Serialize`] / [`Deserialize`] blanket-implemented for
//!   every type, so generic bounds like `T: Serialize` are always satisfied;
//! * no-op derive macros of the same names (behind the `derive` feature),
//!   so existing `#[derive(...)]` attributes keep compiling unchanged.
//!
//! When real serialization becomes a requirement, replace this stub with the
//! genuine crate by deleting `vendor/serde*` and the `[workspace.dependencies]`
//! path overrides — no call-site changes needed.

/// Marker stand-in for `serde::Serialize`. Blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`. Blanket-implemented for all
/// types. The upstream `'de` lifetime parameter is dropped because no code in
/// this workspace names it.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}

// Same trick as upstream serde: the derive macros share the traits' names
// (macro and type namespaces are distinct), so `use serde::{Serialize,
// Deserialize}` imports both at once.
#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
