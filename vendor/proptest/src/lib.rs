//! Offline vendored stub of `proptest`.
//!
//! The build environment has no crates.io access, so this crate reimplements
//! the slice of proptest that the SciBORQ test-suite uses:
//!
//! * the [`proptest!`] macro (optionally prefixed with
//!   `#![proptest_config(...)]`) wrapping `#[test] fn name(arg in strategy)`
//!   items;
//! * [`Strategy`] implementations for half-open / inclusive numeric ranges
//!   and [`collection::vec`];
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Differences from upstream, deliberately accepted for a test harness:
//! no shrinking (a failing case reports the case number; rerunning is
//! deterministic), and no persistence files. Every case is derived from a
//! seed computed from the test's name and the case index, so failures
//! reproduce exactly across runs and machines.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{SampleRange, SeedableRng};

/// Runtime configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Matches upstream's default case count.
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test inputs. Unlike upstream there is no value tree or
/// shrinking: a strategy simply draws a value from a seeded RNG.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A constant strategy, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident / $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.lo >= self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Length specification for collection strategies, `[lo, hi_exclusive)`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub lo: usize,
    pub hi_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: r.end().saturating_add(1),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi_exclusive: exact.saturating_add(1),
        }
    }
}

/// Deterministic per-case RNG: FNV-1a of the test name mixed with the case
/// index, so each property walks its own reproducible stream.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::case_rng(stringify!($name), __case);
                    $( let $arg = $crate::Strategy::sample(&($strategy), &mut __rng); )+
                    // Name the case in panic messages so failures reproduce.
                    let __run = || $body;
                    if let Err(err) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(__run)) {
                        eprintln!(
                            "proptest case {} of `{}` failed (deterministic seed; rerun reproduces it)",
                            __case,
                            stringify!($name),
                        );
                        std::panic::resume_unwind(err);
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs_respect_bounds(
            n in 1usize..50,
            x in -2.0f64..2.0,
            values in collection::vec(0.0f64..1.0, 0..20),
        ) {
            prop_assert!((1..50).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!(values.len() < 20);
            prop_assert!(values.iter().all(|v| (0.0..1.0).contains(v)));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(seed in 0u64..u64::MAX) {
            prop_assert!(seed < u64::MAX);
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::Rng;
        let a: f64 = super::case_rng("t", 3).gen();
        let b: f64 = super::case_rng("t", 3).gen();
        let c: f64 = super::case_rng("t", 4).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
