//! Offline vendored stub of the subset of the `rand 0.8` API that SciBORQ
//! uses. The build environment has no access to crates.io, so this workspace
//! ships a small, dependency-free, fully deterministic implementation with
//! the same names and call signatures:
//!
//! * [`rngs::StdRng`] — a xoshiro256** generator (not the upstream ChaCha12;
//!   stream values differ from upstream `rand`, but are stable across runs
//!   and platforms, which is what the test-suite relies on).
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`]
//! * [`Rng::gen`], [`Rng::gen_range`] (half-open and inclusive integer and
//!   float ranges), [`Rng::gen_bool`], [`Rng::fill`]
//!
//! Uniformity notes: integer ranges use Lemire's widening-multiply mapping,
//! floats use the 53-bit mantissa-scaling construction, both standard
//! techniques with bias far below anything the statistical tests can detect.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (the construction
    /// recommended by the xoshiro authors and used by upstream `rand`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Values drawable from the "standard" distribution, i.e. `rng.gen::<T>()`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let offset = lemire(rng.next_u64(), span);
                self.start.wrapping_add(offset as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(lemire(rng.next_u64(), span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Map a uniform `u64` onto `[0, span)` by widening multiply.
#[inline]
fn lemire(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit: $t = Standard::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit: $t = Standard::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// The user-facing extension trait, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        let unit: f64 = Standard::sample(self);
        unit < p
    }

    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for upstream
    /// `StdRng`. Same construction API, different (but stable) stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&y));
            let z: i64 = rng.gen_range(1..=5);
            assert!((1..=5).contains(&z));
        }
    }

    #[test]
    fn unit_float_is_uniformish() {
        let mut rng = StdRng::seed_from_u64(1234);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean of U(0,1) was {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "gen_bool(0.3) rate was {rate}");
    }

    #[test]
    fn rngcore_next_u64_via_trait_object_path() {
        let mut rng = StdRng::seed_from_u64(5);
        let first = rng.clone().next_u64();
        assert_eq!(first, rng.next_u64());
    }
}
