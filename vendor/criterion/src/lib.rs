//! Minimal vendored stand-in for the `criterion` benchmarking harness.
//!
//! The container this repository builds in has no network access, so the
//! real criterion crate cannot be fetched. This stub reproduces the small
//! API surface the benches use — `Criterion`, benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `black_box`,
//! `Throughput`, `BenchmarkId` and the `criterion_group!` /
//! `criterion_main!` macros — and actually measures the closures with
//! `std::time::Instant`, printing mean wall-clock time per iteration. It is
//! intentionally simple: no statistics, no outlier rejection, no HTML
//! reports. The paper-figure numbers come from the hand-rolled benches and
//! `src/bin/experiments.rs`, not from this harness.

use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How a group's throughput is reported (accepted, currently informational).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id like `name/parameter`.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs a closure repeatedly and records the mean time per iteration.
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Measure `routine`: a short warm-up, then `iters` timed runs.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters.min(3) {
            hint::black_box(routine());
        }
        let started = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        let elapsed = started.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / self.iters as f64;
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: u64,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Record the group's throughput (informational in this stub).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1) as u64;
        self
    }

    /// Override the (ignored) measurement time, for API compatibility.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut bencher = Bencher {
            iters: self.samples,
            mean_ns: 0.0,
        };
        f(&mut bencher);
        println!(
            "bench {}/{}: {:.0} ns/iter ({} iters)",
            self.name, id, bencher.mean_ns, bencher.iters
        );
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        self.run(&id.to_string(), f);
        self
    }

    /// Benchmark a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Finish the group (no-op; reports were printed as benches ran).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// A harness with default settings.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("top").bench_function(id, f);
        self
    }
}

/// Bundle benchmark functions under one group name, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` that runs the given groups, mirroring criterion's macro of
/// the same name. Unrecognised CLI flags (including the `--bench` flag cargo
/// passes and the hand-rolled benches' `--*-json-out` flags) are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
