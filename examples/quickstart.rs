//! Quickstart: build a small synthetic sky warehouse, create impressions,
//! and answer a bounded query.
//!
//! Run with `cargo run --release --example quickstart`.

use sciborq_columnar::Predicate;
use sciborq_core::{ExplorationSession, QueryBounds, SamplingPolicy, SciborqConfig};
use sciborq_skyserver::{Cone, DatasetConfig, SkyDataset};
use sciborq_workload::{AttributeDomain, Query};

fn main() {
    // 1. Build a synthetic SkyServer-like warehouse (100k detections).
    let dataset = SkyDataset::build(DatasetConfig {
        total_objects: 100_000,
        batch_size: 20_000,
        ..DatasetConfig::default()
    })
    .expect("dataset");
    println!(
        "warehouse ready: {} rows in photoobj, tables = {:?}",
        dataset.fact_rows(),
        dataset.catalog.table_names()
    );

    // 2. Open an exploration session with three impression layers.
    let config = SciborqConfig::with_layers(vec![20_000, 2_000, 200]);
    let session = ExplorationSession::new(
        dataset.catalog.clone(),
        config,
        &[
            ("ra", AttributeDomain::new(0.0, 360.0, 36)),
            ("dec", AttributeDomain::new(-90.0, 90.0, 18)),
        ],
    )
    .expect("session");
    session
        .create_impressions("photoobj", SamplingPolicy::Uniform)
        .expect("impressions");

    // 3. A cone-search COUNT with a 10% error bound at 95% confidence.
    let cone = Cone::new(185.0, 0.0, 5.0);
    let query = Query::count("photoobj", cone.bounding_box_predicate("ra", "dec"));
    let outcome = session
        .execute(&query, &QueryBounds::max_error(0.10))
        .expect("query");
    let answer = outcome.as_aggregate().expect("aggregate answer");
    println!("\n{query}");
    println!("  approximate answer : {answer}");
    println!("  error bound met    : {}", answer.error_bound_met);
    println!("  escalations        : {}", answer.escalations);

    // 4. The same query demanding an exact answer falls through to the base data.
    let exact = session
        .execute(&query, &QueryBounds::max_error(1e-12))
        .expect("exact query");
    let exact = exact.as_aggregate().expect("aggregate answer");
    println!("\nexact answer ({}): {}", exact.level, exact.value.unwrap());

    // 5. And a quality filter evaluated cheaply against an impression.
    let bright = Query::count(
        "photoobj",
        Predicate::lt("r_mag", 18.0).and(Predicate::eq("class", "GALAXY")),
    );
    let outcome = session
        .execute(&bright, &QueryBounds::max_error(0.15))
        .expect("query");
    println!("\n{bright}");
    println!("  {}", outcome.as_aggregate().unwrap());
}
