//! Adaptation to a shifting exploration focus (§3.1 "Adaptive").
//!
//! Phase 1 focuses on one sky region; the biased impressions are built for
//! it. Phase 2 moves the focus elsewhere; the session detects the shift and
//! rebuilds the impressions, restoring the enrichment around the new focal
//! point.
//!
//! Run with `cargo run --release --example adaptive_workload`.

use sciborq_core::{ExplorationSession, QueryBounds, SamplingPolicy, SciborqConfig};
use sciborq_skyserver::{Cone, DatasetConfig, SkyDataset};
use sciborq_workload::{AttributeDomain, FocalCluster, Query, WorkloadConfig, WorkloadGenerator};

/// Fraction of the first impression layer that falls inside a cone.
fn focal_share(session: &ExplorationSession, cone: Cone) -> f64 {
    let hierarchy = session.hierarchy("photoobj").expect("hierarchy exists");
    let layer = &hierarchy.layers()[0];
    let matches = cone
        .bounding_box_predicate("ra", "dec")
        .evaluate(layer.data())
        .expect("predicate evaluates");
    matches.len() as f64 / layer.row_count() as f64
}

fn main() {
    let dataset = SkyDataset::build(DatasetConfig {
        total_objects: 150_000,
        batch_size: 50_000,
        ..DatasetConfig::default()
    })
    .expect("dataset");

    let config = SciborqConfig::with_layers(vec![10_000, 1_000]);
    let session = ExplorationSession::new(
        dataset.catalog.clone(),
        config,
        &[
            ("ra", AttributeDomain::new(0.0, 360.0, 72)),
            ("dec", AttributeDomain::new(-90.0, 90.0, 36)),
        ],
    )
    .expect("session");
    session
        .create_impressions("photoobj", SamplingPolicy::Uniform)
        .expect("bootstrap impressions");

    // ---- Phase 1: the scientist studies the region around (185, 0) ----
    let phase1 = WorkloadConfig {
        clusters: vec![FocalCluster::new(185.0, 0.0, 2.0, 1.0)],
        background_fraction: 0.05,
        ..WorkloadConfig::default()
    };
    let mut generator = WorkloadGenerator::new(phase1, 21);
    for query in generator.generate(250) {
        let _ = session.execute(&query, &QueryBounds::default());
    }
    session
        .create_impressions("photoobj", SamplingPolicy::biased(["ra", "dec"]))
        .expect("biased impressions");

    let cone_a = Cone::new(185.0, 0.0, 4.0);
    let cone_b = Cone::new(160.0, 25.0, 4.0);
    println!("after phase 1 (focus at ra=185, dec=0):");
    println!(
        "  impression share near A (185,0)  : {:.3}",
        focal_share(&session, cone_a)
    );
    println!(
        "  impression share near B (160,25) : {:.3}",
        focal_share(&session, cone_b)
    );

    // ---- Phase 2: the focus moves to the region around (160, 25) ----
    let phase2 = WorkloadConfig {
        clusters: vec![FocalCluster::new(160.0, 25.0, 2.0, 1.0)],
        background_fraction: 0.05,
        ..WorkloadConfig::default()
    };
    let mut generator = WorkloadGenerator::new(phase2, 22);
    for query in generator.generate(400) {
        let _ = session.execute(&query, &QueryBounds::default());
    }

    let decision = session.adapt().expect("maintenance check");
    println!(
        "\nworkload shift detected: max shift {:.2}, rebuild = {}",
        decision.max_shift, decision.should_rebuild
    );
    println!("adaptive rebuilds so far: {}", session.rebuilds());

    println!("\nafter phase 2 adaptation (focus at ra=160, dec=25):");
    println!(
        "  impression share near A (185,0)  : {:.3}",
        focal_share(&session, cone_a)
    );
    println!(
        "  impression share near B (160,25) : {:.3}",
        focal_share(&session, cone_b)
    );

    // ---- Error comparison on a phase-2 focal query ----
    let query = Query::count("photoobj", cone_b.bounding_box_predicate("ra", "dec"));
    let answer = session
        .execute(&query, &QueryBounds::row_budget(1_000))
        .expect("query");
    let a = answer.as_aggregate().unwrap();
    println!(
        "\nfocal COUNT after adaptation: {:.1} (relative error {:.3}, level {})",
        a.value.unwrap_or(f64::NAN),
        a.relative_error(),
        a.level
    );
}
