//! SkyServer-style exploration: a workload of cone searches steers biased
//! impressions, which then answer focal queries with tighter error bounds
//! than uniform samples of the same size.
//!
//! Run with `cargo run --release --example sky_exploration`.

use sciborq_core::{ExplorationSession, QueryBounds, SamplingPolicy, SciborqConfig};
use sciborq_skyserver::{Cone, DatasetConfig, SkyDataset};
use sciborq_workload::{AttributeDomain, Query, WorkloadGenerator};

fn main() {
    let dataset = SkyDataset::build(DatasetConfig {
        total_objects: 200_000,
        batch_size: 50_000,
        ..DatasetConfig::default()
    })
    .expect("dataset");
    println!("warehouse ready: {} rows", dataset.fact_rows());

    let config = SciborqConfig::with_layers(vec![20_000, 2_000]);
    let session = ExplorationSession::new(
        dataset.catalog.clone(),
        config,
        &[
            ("ra", AttributeDomain::new(0.0, 360.0, 72)),
            ("dec", AttributeDomain::new(-90.0, 90.0, 36)),
        ],
    )
    .expect("session");

    // Phase 1: explore with uniform impressions while the workload is logged.
    session
        .create_impressions("photoobj", SamplingPolicy::Uniform)
        .expect("uniform impressions");
    let mut generator = WorkloadGenerator::default_sky(11);
    println!("\nreplaying 300 logged exploration queries ...");
    for query in generator.generate(300) {
        let _ = session.execute(&query, &QueryBounds::default());
    }
    // Take the lock once: `predicate_set()` returns a guard, and two calls
    // inside one statement would hold both guards at the same time.
    let predicates = session.predicate_set();
    println!(
        "predicate set now holds {} ra-values from {} queries",
        predicates.observed_values("ra"),
        predicates.queries_observed()
    );
    drop(predicates);

    // Phase 2: rebuild the impressions biased towards the observed focus.
    session
        .create_impressions("photoobj", SamplingPolicy::biased(["ra", "dec"]))
        .expect("biased impressions");
    let hierarchy = session.hierarchy("photoobj").unwrap();
    for layer in hierarchy.layers() {
        println!(
            "layer {}: {} rows, {:.1} KiB, policy {}",
            layer.layer(),
            layer.row_count(),
            layer.byte_size() as f64 / 1024.0,
            layer.policy().name()
        );
    }

    // Phase 3: focal cone searches under different error bounds.
    let cone = Cone::new(185.0, 0.0, 2.0);
    let query = Query::count("photoobj", cone.bounding_box_predicate("ra", "dec"));
    println!("\n{query}");
    for error in [0.25, 0.10, 0.05, 0.01] {
        match session.execute(&query, &QueryBounds::max_error(error)) {
            Ok(outcome) => {
                let a = outcome.as_aggregate().unwrap();
                println!(
                    "  error <= {:>5.2}: {:>10.1} +- {:>8.1}  on {:<9}  ({} escalations, {} rows scanned)",
                    error,
                    a.value.unwrap_or(f64::NAN),
                    a.interval.map(|ci| ci.half_width()).unwrap_or(0.0),
                    a.level.to_string(),
                    a.escalations,
                    a.rows_scanned
                );
            }
            Err(e) => println!("  error <= {error}: failed: {e}"),
        }
    }

    // Phase 4: "give me the most representative result within this budget".
    println!("\nrow-budget (runtime-bounded) answers for the same query:");
    for budget in [2_000u64, 20_000, 250_000] {
        let outcome = session
            .execute(&query, &QueryBounds::row_budget(budget))
            .expect("query");
        let a = outcome.as_aggregate().unwrap();
        println!(
            "  budget {:>7} rows: {:>10.1}  (level {}, relative error {:.3})",
            budget,
            a.value.unwrap_or(f64::NAN),
            a.level,
            a.relative_error()
        );
    }
}
