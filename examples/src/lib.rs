pub const EXAMPLES: &str = "see the examples/ directory";
