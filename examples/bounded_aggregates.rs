//! The runtime/quality trade-off: error bounds and row budgets across
//! impression layers (the text claims of §3.1–3.2).
//!
//! Prints, for a fixed cone-search aggregate, how the relative error shrinks
//! and the scanned-row count grows as the engine is allowed to use larger
//! impressions — and how escalation behaves for a sweep of error targets.
//!
//! Run with `cargo run --release --example bounded_aggregates`.

use sciborq_columnar::AggregateKind;
use sciborq_core::{
    BoundedQueryEngine, LayerHierarchy, QueryBounds, SamplingPolicy, SciborqConfig,
};
use sciborq_skyserver::{Cone, DatasetConfig, SkyDataset};
use sciborq_workload::Query;
use std::time::Instant;

fn main() {
    let dataset = SkyDataset::build(DatasetConfig {
        total_objects: 300_000,
        batch_size: 50_000,
        ..DatasetConfig::default()
    })
    .expect("dataset");
    let fact = dataset.catalog.table("photoobj").expect("fact table");
    let fact = fact.read();

    let config = SciborqConfig::with_layers(vec![100_000, 30_000, 10_000, 3_000, 1_000]);
    let hierarchy = LayerHierarchy::build_from_table(&fact, SamplingPolicy::Uniform, &config, None)
        .expect("hierarchy");
    let engine = BoundedQueryEngine::new(config).expect("engine");

    let cone = Cone::new(185.0, 0.0, 3.0);
    let count_query = Query::count("photoobj", cone.bounding_box_predicate("ra", "dec"));
    let avg_query = Query::aggregate(
        "photoobj",
        cone.bounding_box_predicate("ra", "dec"),
        AggregateKind::Avg,
        "r_mag",
    );

    // exact ground truth
    let exact = engine
        .execute_aggregate(
            &count_query,
            &hierarchy,
            Some(&fact),
            &QueryBounds::max_error(1e-15),
        )
        .expect("exact");
    println!(
        "ground truth COUNT = {} (from {})",
        exact.value.unwrap(),
        exact.level
    );

    println!("\n--- error vs impression size (row-budget sweep, COUNT) ---");
    println!(
        "{:>12} {:>12} {:>14} {:>12} {:>10}",
        "row budget", "estimate", "rel. error", "level", "time"
    );
    for budget in [1_000u64, 3_000, 10_000, 30_000, 100_000, 400_000] {
        let started = Instant::now();
        let answer = engine
            .execute_aggregate(
                &count_query,
                &hierarchy,
                Some(&fact),
                &QueryBounds::row_budget(budget),
            )
            .expect("bounded query");
        println!(
            "{:>12} {:>12.1} {:>14.4} {:>12} {:>9.2?}",
            budget,
            answer.value.unwrap_or(f64::NAN),
            answer.relative_error(),
            answer.level.to_string(),
            started.elapsed()
        );
    }

    println!("\n--- escalation vs requested error bound (COUNT) ---");
    println!(
        "{:>12} {:>12} {:>12} {:>14} {:>12}",
        "max error", "estimate", "level", "escalations", "rows scanned"
    );
    for error in [0.5, 0.2, 0.1, 0.05, 0.02, 0.01, 1e-12] {
        let answer = engine
            .execute_aggregate(
                &count_query,
                &hierarchy,
                Some(&fact),
                &QueryBounds::max_error(error),
            )
            .expect("bounded query");
        println!(
            "{:>12.0e} {:>12.1} {:>12} {:>14} {:>12}",
            error,
            answer.value.unwrap_or(f64::NAN),
            answer.level.to_string(),
            answer.escalations,
            answer.rows_scanned
        );
    }

    println!("\n--- the same sweep for AVG(r_mag) ---");
    for error in [0.05, 0.01, 0.005, 0.001] {
        let answer = engine
            .execute_aggregate(
                &avg_query,
                &hierarchy,
                Some(&fact),
                &QueryBounds::max_error(error),
            )
            .expect("bounded query");
        println!(
            "  error <= {:>7.3}: AVG = {:>7.3} on {:<10} ({} rows scanned)",
            error,
            answer.value.unwrap_or(f64::NAN),
            answer.level.to_string(),
            answer.rows_scanned
        );
    }
}
