pub const INTEGRATION: &str = "integration test crate";
