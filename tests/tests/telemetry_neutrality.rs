//! Telemetry neutrality: collecting per-query traces and metrics must not
//! change a single answer bit. Two identically-seeded sessions — one with
//! trace collection on, one off — are driven with the same queries and
//! their answers compared with `f64::to_bits`.

use proptest::prelude::*;
use sciborq_columnar::{Catalog, DataType, Field, Predicate, Schema, Table, Value};
use sciborq_core::{ExplorationSession, QueryBounds, SamplingPolicy, SciborqConfig};
use sciborq_workload::{AttributeDomain, Query};

fn photoobj(rows: usize) -> Table {
    let schema = Schema::shared(vec![
        Field::new("objid", DataType::Int64),
        Field::new("ra", DataType::Float64),
    ])
    .unwrap();
    let mut table = Table::new("photoobj", schema);
    for i in 0..rows as i64 {
        let ra = (i as f64 * 137.507_764).rem_euclid(360.0);
        table
            .append_row(&[Value::Int64(i), Value::Float64(ra)])
            .unwrap();
    }
    table
}

fn session(rows: usize, seed: u64, traces: bool) -> ExplorationSession {
    let catalog = Catalog::new();
    catalog.register(photoobj(rows)).unwrap();
    let mut config = SciborqConfig::with_layers(vec![(rows / 5).max(1), (rows / 50).max(1)])
        .with_collect_traces(traces);
    config.seed = seed;
    let session = ExplorationSession::new(
        catalog,
        config,
        &[("ra", AttributeDomain::new(0.0, 360.0, 36))],
    )
    .unwrap();
    session
        .create_impressions("photoobj", SamplingPolicy::Uniform)
        .unwrap();
    session
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Aggregates answer bit-for-bit identically with tracing on and off,
    /// and only the traced session carries a trace.
    #[test]
    fn tracing_changes_no_aggregate_bits(
        rows in 500usize..3_000,
        threshold in 1.0f64..359.0,
        max_error in 1e-6f64..0.5,
        seed in 0u64..1_000,
    ) {
        let traced = session(rows, seed, true);
        let plain = session(rows, seed, false);
        let query = Query::count("photoobj", Predicate::lt("ra", threshold));
        let bounds = QueryBounds::max_error(max_error);

        let a = traced.execute(&query, &bounds).unwrap();
        let b = plain.execute(&query, &bounds).unwrap();
        let a = a.as_aggregate().unwrap();
        let b = b.as_aggregate().unwrap();

        prop_assert_eq!(a.value.map(f64::to_bits), b.value.map(f64::to_bits));
        let bits = |ci: &Option<sciborq_stats::ConfidenceInterval>| {
            ci.map(|ci| (ci.lower.to_bits(), ci.upper.to_bits(), ci.confidence.to_bits()))
        };
        prop_assert_eq!(bits(&a.interval), bits(&b.interval));
        prop_assert_eq!(a.level, b.level);
        prop_assert_eq!(a.rows_scanned, b.rows_scanned);
        prop_assert_eq!(a.escalations, b.escalations);
        prop_assert_eq!(a.error_bound_met, b.error_bound_met);

        // the trace rides along without feeding back into the answer
        prop_assert!(b.trace.is_none());
        let trace = a.trace.as_ref().unwrap();
        prop_assert_eq!(&trace.final_level, &a.level.name());
        prop_assert_eq!(trace.escalations, a.escalations);
        prop_assert_eq!(trace.error_bound_met, a.error_bound_met);
        prop_assert_eq!(trace.levels.iter().map(|l| l.rows_scanned).sum::<u64>(),
                        a.rows_scanned);
    }

    /// SELECT answers return identical row counts and levels with tracing
    /// on and off.
    #[test]
    fn tracing_changes_no_select_rows(
        rows in 500usize..2_000,
        threshold in 1.0f64..359.0,
        limit in 1usize..50,
        seed in 0u64..1_000,
    ) {
        let traced = session(rows, seed, true);
        let plain = session(rows, seed, false);
        let query = Query::select("photoobj", Predicate::lt("ra", threshold)).with_limit(limit);
        let bounds = QueryBounds::default();

        let a = traced.execute(&query, &bounds).unwrap();
        let b = plain.execute(&query, &bounds).unwrap();
        let a = a.as_rows().unwrap();
        let b = b.as_rows().unwrap();

        prop_assert_eq!(a.returned_rows(), b.returned_rows());
        prop_assert_eq!(a.level, b.level);
        prop_assert_eq!(a.rows_scanned, b.rows_scanned);
        prop_assert_eq!(
            a.estimated_total_matches.to_bits(),
            b.estimated_total_matches.to_bits()
        );
        prop_assert!(b.trace.is_none());
        prop_assert!(a.trace.is_some());
    }
}
