//! The paper's core promise, tested as a statistical contract: the
//! confidence intervals the bounded engine reports must actually cover the
//! true answer at (close to) the nominal rate, and the engine must report
//! its evaluation level honestly when bounds cannot be met.
//!
//! Every trial is seeded deterministically, so these tests are exactly
//! reproducible: a failure is a real calibration regression, not noise.

use sciborq_columnar::{
    AggregateKind, DataType, Field, Predicate, RecordBatchBuilder, Schema, SchemaRef, Table, Value,
};
use sciborq_core::{
    BoundedQueryEngine, EvaluationLevel, LayerHierarchy, QueryBounds, SamplingPolicy, SciborqConfig,
};
use sciborq_workload::{AttributeDomain, PredicateSet, Query};

const CONFIDENCE: f64 = 0.95;
const TRIALS: u64 = 250;
/// Observed coverage may undershoot the nominal level by at most 5 points.
const COVERAGE_FLOOR: f64 = CONFIDENCE - 0.05;

fn schema() -> SchemaRef {
    Schema::shared(vec![
        Field::new("objid", DataType::Int64),
        Field::new("ra", DataType::Float64),
        Field::new("r_mag", DataType::Float64),
    ])
    .unwrap()
}

/// A fixed, irregular population: golden-ratio ra spread over [0, 360) and a
/// skewed magnitude column, so none of the estimators get an accidentally
/// easy (constant-variance) target.
fn base_table(rows: usize) -> Table {
    let mut b = RecordBatchBuilder::with_capacity(schema(), rows);
    for i in 0..rows as i64 {
        let ra = (i as f64 * 222.492_235_9) % 360.0;
        let r_mag =
            14.0 + ((i * i + 7) % 97) as f64 / 97.0 * 8.0 + if i % 11 == 0 { 3.0 } else { 0.0 };
        b.push_row(&[Value::Int64(i), Value::Float64(ra), Value::Float64(r_mag)])
            .unwrap();
    }
    let mut t = Table::new("photoobj", schema());
    t.append_batch(&b.finish().unwrap()).unwrap();
    t
}

fn exact_scalar(table: &Table, query: &Query) -> f64 {
    let selection = query.predicate.evaluate(table).unwrap();
    match query.kind {
        sciborq_workload::QueryKind::Aggregate { kind, ref column } => {
            sciborq_columnar::compute_aggregate(table, column.as_deref(), kind, &selection)
                .unwrap()
                .value
                .unwrap()
        }
        _ => panic!("coverage harness only evaluates aggregates"),
    }
}

/// Run `TRIALS` independently-seeded hierarchy builds and count how often the
/// reported interval covers the exact answer.
fn coverage_of(query: &Query, policy: SamplingPolicy, rows: usize, layer: usize) -> f64 {
    let table = base_table(rows);
    let truth = exact_scalar(&table, query);
    let engine = BoundedQueryEngine::new(SciborqConfig::default()).unwrap();

    // For biased policies, a workload concentrated on the queried region.
    let mut predicate_set =
        PredicateSet::new(&[("ra", AttributeDomain::new(0.0, 360.0, 36))]).unwrap();
    for _ in 0..100 {
        predicate_set.log_value("ra", 45.0);
        predicate_set.log_value("ra", 120.0);
    }
    let predicate_set = match policy {
        SamplingPolicy::Biased { .. } => Some(&predicate_set),
        _ => None,
    };

    let mut covered = 0u64;
    for trial in 0..TRIALS {
        let mut config = SciborqConfig::with_layers(vec![layer]);
        config.seed = 0xC0FFEE ^ (trial * 7919);
        let hierarchy =
            LayerHierarchy::build_from_table(&table, policy.clone(), &config, predicate_set)
                .unwrap();
        // No error bound: the engine answers from the single impression and
        // must attach an honest interval to that answer.
        let answer = engine
            .execute_aggregate(query, &hierarchy, None, &QueryBounds::default())
            .unwrap();
        let interval = answer.interval.expect("sampled answers carry an interval");
        assert_eq!(interval.confidence, CONFIDENCE);
        if interval.covers(truth) {
            covered += 1;
        }
    }
    covered as f64 / TRIALS as f64
}

#[test]
fn count_interval_coverage_meets_nominal_level() {
    let query = Query::count("photoobj", Predicate::lt("ra", 90.0));
    let coverage = coverage_of(&query, SamplingPolicy::Uniform, 4_000, 400);
    assert!(
        coverage >= COVERAGE_FLOOR,
        "COUNT coverage {coverage:.3} fell below {COVERAGE_FLOOR}"
    );
}

#[test]
fn sum_interval_coverage_meets_nominal_level() {
    let query = Query::aggregate(
        "photoobj",
        Predicate::lt("ra", 180.0),
        AggregateKind::Sum,
        "r_mag",
    );
    let coverage = coverage_of(&query, SamplingPolicy::Uniform, 4_000, 400);
    assert!(
        coverage >= COVERAGE_FLOOR,
        "SUM coverage {coverage:.3} fell below {COVERAGE_FLOOR}"
    );
}

#[test]
fn avg_interval_coverage_meets_nominal_level() {
    let query = Query::aggregate(
        "photoobj",
        Predicate::lt("ra", 180.0),
        AggregateKind::Avg,
        "r_mag",
    );
    let coverage = coverage_of(&query, SamplingPolicy::Uniform, 4_000, 400);
    assert!(
        coverage >= COVERAGE_FLOOR,
        "AVG coverage {coverage:.3} fell below {COVERAGE_FLOOR}"
    );
}

#[test]
fn biased_count_interval_coverage_meets_nominal_level() {
    // The focal region the synthetic workload concentrates on.
    let query = Query::count("photoobj", Predicate::between("ra", 40.0, 50.0));
    let coverage = coverage_of(&query, SamplingPolicy::biased(["ra"]), 4_000, 400);
    assert!(
        coverage >= COVERAGE_FLOOR,
        "biased COUNT coverage {coverage:.3} fell below {COVERAGE_FLOOR}"
    );
}

/// A sampled zero is not a certain zero: when an impression holds no rows
/// matching a rare predicate, its degenerate [0, 0] interval must not count
/// as meeting a finite error bound — the engine escalates to the base data
/// (or honestly reports the bound unmet when it may not).
#[test]
fn sampled_zero_count_is_never_certified() {
    let table = base_table(20_000);
    // One matching row in 20k (selectivity 5e-5): a 200-row impression
    // almost surely holds zero matches.
    let query = Query::count("photoobj", Predicate::lt("objid", 1.0));
    let config = SciborqConfig::with_layers(vec![200]);
    let hierarchy =
        LayerHierarchy::build_from_table(&table, SamplingPolicy::Uniform, &config, None).unwrap();
    let impression_matches = query
        .predicate
        .evaluate(hierarchy.layers()[0].data())
        .unwrap()
        .len();
    assert_eq!(impression_matches, 0, "the premise of this test");
    let engine = BoundedQueryEngine::new(SciborqConfig::default()).unwrap();

    // With base data available: escalate and answer exactly.
    let answer = engine
        .execute_aggregate(
            &query,
            &hierarchy,
            Some(&table),
            &QueryBounds::max_error(0.5),
        )
        .unwrap();
    assert_eq!(answer.level, EvaluationLevel::BaseData);
    assert_eq!(answer.value.unwrap(), 1.0);

    // Without base data: the zero estimate must be flagged as NOT meeting
    // the bound rather than certified as an exact zero.
    let honest = engine
        .execute_aggregate(&query, &hierarchy, None, &QueryBounds::max_error(0.5))
        .unwrap();
    assert_eq!(honest.value, Some(0.0));
    assert!(!honest.error_bound_met);

    // With no error bound at all, a sampled zero is an acceptable
    // best-effort answer (nothing was promised).
    let unbounded = engine
        .execute_aggregate(&query, &hierarchy, None, &QueryBounds::default())
        .unwrap();
    assert_eq!(unbounded.value, Some(0.0));
}

/// A query whose error bound is unmeetable on the small layers must escalate
/// through the hierarchy, and the final answer must label its evaluation
/// level (and whether the bound was met) honestly.
#[test]
fn unmeetable_bound_escalates_and_reports_level_honestly() {
    let table = base_table(20_000);
    let config = SciborqConfig::with_layers(vec![2_000, 200]);
    let hierarchy =
        LayerHierarchy::build_from_table(&table, SamplingPolicy::Uniform, &config, None).unwrap();
    let engine = BoundedQueryEngine::new(SciborqConfig::default()).unwrap();
    // ~2.5% selectivity: a 200-row layer holds ~5 matches (≈ 45% relative
    // error), the 2000-row layer ~50 matches (≈ 14%): 1e-6 is unmeetable on
    // any impression.
    let query = Query::count("photoobj", Predicate::lt("ra", 9.0));
    let bounds = QueryBounds::max_error(1e-6);

    // With the base table available the engine must walk every layer and
    // land on the base data with the exact answer.
    let answer = engine
        .execute_aggregate(&query, &hierarchy, Some(&table), &bounds)
        .unwrap();
    assert_eq!(answer.level, EvaluationLevel::BaseData);
    assert_eq!(
        answer.escalations, 2,
        "both impression layers must be tried"
    );
    assert!(answer.error_bound_met);
    assert_eq!(answer.value.unwrap(), exact_scalar(&table, &query));
    assert_eq!(answer.relative_error(), 0.0);

    // Without base data the engine must NOT pretend: it returns the most
    // detailed impression's answer flagged as missing the bound.
    let honest = engine
        .execute_aggregate(&query, &hierarchy, None, &bounds)
        .unwrap();
    assert_eq!(honest.level, EvaluationLevel::Layer(1));
    assert!(!honest.error_bound_met);
    assert!(honest.relative_error() > 1e-6);

    // A row budget that forbids leaving the smallest layer must also be
    // reported honestly: budget respected, bound missed, level = Layer(2).
    let capped = engine
        .execute_aggregate(
            &query,
            &hierarchy,
            Some(&table),
            &QueryBounds::row_budget(500).with_max_error(1e-6),
        )
        .unwrap();
    assert_eq!(capped.level, EvaluationLevel::Layer(2));
    assert!(!capped.error_bound_met);
    assert!(capped.time_bound_met);
    assert!(capped.rows_scanned <= 500);
}
