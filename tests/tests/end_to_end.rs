//! Cross-crate integration tests: the full SciBORQ loop over the synthetic
//! SkyServer warehouse.

use sciborq_columnar::{compute_aggregate, AggregateKind, Predicate, SelectionVector};
use sciborq_core::{
    EvaluationLevel, ExplorationSession, QueryBounds, SamplingPolicy, SciborqConfig,
};
use sciborq_skyserver::{get_nearby_obj_eq, Cone, DatasetConfig, SkyDataset};
use sciborq_workload::{AttributeDomain, Query, WorkloadGenerator};

fn sky_session(total_objects: usize, layers: Vec<usize>) -> (ExplorationSession, SkyDataset) {
    let dataset = SkyDataset::build(DatasetConfig {
        total_objects,
        batch_size: total_objects / 5,
        ..DatasetConfig::default()
    })
    .expect("dataset builds");
    let config = SciborqConfig::with_layers(layers);
    let session = ExplorationSession::new(
        dataset.catalog.clone(),
        config,
        &[
            ("ra", AttributeDomain::new(0.0, 360.0, 36)),
            ("dec", AttributeDomain::new(-90.0, 90.0, 18)),
        ],
    )
    .expect("session builds");
    (session, dataset)
}

#[test]
fn uniform_impressions_answer_cone_counts_within_bounds() {
    let (session, dataset) = sky_session(60_000, vec![6_000, 600]);
    session
        .create_impressions("photoobj", SamplingPolicy::Uniform)
        .unwrap();

    // ground truth from the base table
    let fact = dataset.catalog.table("photoobj").unwrap();
    let fact = fact.read();
    let cone = Cone::new(185.0, 0.0, 6.0);
    let truth = cone
        .bounding_box_predicate("ra", "dec")
        .evaluate(&fact)
        .unwrap()
        .len() as f64;
    drop(fact);
    assert!(truth > 500.0, "the main cluster must be populated");

    let query = Query::count(
        "photoobj",
        Cone::new(185.0, 0.0, 6.0).bounding_box_predicate("ra", "dec"),
    );
    let outcome = session
        .execute(&query, &QueryBounds::max_error(0.15))
        .unwrap();
    let answer = outcome.as_aggregate().unwrap();
    assert!(answer.error_bound_met);
    let estimate = answer.value.unwrap();
    assert!(
        (estimate - truth).abs() / truth < 0.3,
        "estimate {estimate} vs truth {truth}"
    );
}

#[test]
fn biased_impressions_beat_uniform_on_focal_queries() {
    let (uniform_session, _ds) = sky_session(80_000, vec![4_000, 400]);
    let (biased_session, _ds2) = sky_session(80_000, vec![4_000, 400]);

    // Build uniform impressions first (no workload needed).
    uniform_session
        .create_impressions("photoobj", SamplingPolicy::Uniform)
        .unwrap();

    // For the biased session: create uniform impressions first so the warm-up
    // workload can be executed and logged, then rebuild with bias — this is
    // exactly the "observe the workload, then adapt" loop of the paper.
    biased_session
        .create_impressions("photoobj", SamplingPolicy::Uniform)
        .unwrap();
    let mut generator = WorkloadGenerator::default_sky(5);
    for query in generator.generate(150) {
        let _ = biased_session.execute(&query, &QueryBounds::default());
    }
    biased_session
        .create_impressions("photoobj", SamplingPolicy::biased(["ra", "dec"]))
        .unwrap();

    // A focal-region count: compare the error of the two smallest layers.
    let focal_query = Query::count(
        "photoobj",
        Cone::new(185.0, 0.0, 2.0).bounding_box_predicate("ra", "dec"),
    );
    let uniform_answer = uniform_session
        .execute(&focal_query, &QueryBounds::row_budget(400))
        .unwrap();
    let biased_answer = biased_session
        .execute(&focal_query, &QueryBounds::row_budget(400))
        .unwrap();
    let u = uniform_answer.as_aggregate().unwrap();
    let b = biased_answer.as_aggregate().unwrap();
    // The biased impression holds many more focal tuples, so its relative
    // error on the focal query should be smaller.
    assert!(
        b.relative_error() < u.relative_error(),
        "biased error {} should beat uniform error {}",
        b.relative_error(),
        u.relative_error()
    );
}

#[test]
fn escalation_reaches_base_data_for_exact_answers() {
    let (session, dataset) = sky_session(30_000, vec![3_000, 300]);
    session
        .create_impressions("photoobj", SamplingPolicy::Uniform)
        .unwrap();
    let query = Query::count("photoobj", Predicate::eq("class", "QSO"));
    let outcome = session
        .execute(&query, &QueryBounds::max_error(1e-12))
        .unwrap();
    let answer = outcome.as_aggregate().unwrap();
    assert_eq!(answer.level, EvaluationLevel::BaseData);

    let fact = dataset.catalog.table("photoobj").unwrap();
    let fact = fact.read();
    let truth = Predicate::eq("class", "QSO").evaluate(&fact).unwrap().len() as f64;
    assert_eq!(answer.value.unwrap(), truth);
}

#[test]
fn incremental_loads_keep_impressions_fresh() {
    let (session, _dataset) = sky_session(20_000, vec![2_000, 200]);
    session
        .create_impressions("photoobj", SamplingPolicy::Uniform)
        .unwrap();
    let before = session.hierarchy("photoobj").unwrap().observed_rows();

    // simulate two more daily ingests
    let mut generator = sciborq_skyserver::PhotoObjGenerator::default_sky(777);
    for _ in 0..2 {
        let batch = generator.next_batch(5_000);
        session.load("photoobj", &batch).unwrap();
    }
    let after = session.hierarchy("photoobj").unwrap().observed_rows();
    assert_eq!(after, before + 10_000);

    let query = Query::count("photoobj", Predicate::True);
    let outcome = session
        .execute(&query, &QueryBounds::max_error(0.01))
        .unwrap();
    assert!((outcome.as_aggregate().unwrap().value.unwrap() - 30_000.0).abs() < 1.0);
}

#[test]
fn select_limit_semantics_draw_from_impressions() {
    let (session, _dataset) = sky_session(40_000, vec![4_000, 400]);
    session
        .create_impressions("photoobj", SamplingPolicy::Uniform)
        .unwrap();
    let query = Query::select(
        "photoobj",
        Cone::new(185.0, 0.0, 8.0).bounding_box_predicate("ra", "dec"),
    )
    .with_limit(50);
    let outcome = session.execute(&query, &QueryBounds::default()).unwrap();
    let rows = outcome.as_rows().unwrap();
    assert_eq!(rows.returned_rows(), 50);
    assert!(matches!(rows.level, EvaluationLevel::Layer(_)));
    // all returned rows satisfy the predicate
    let check = Cone::new(185.0, 0.0, 8.0)
        .bounding_box_predicate("ra", "dec")
        .evaluate(&rows.rows)
        .unwrap();
    assert_eq!(check.len(), 50);
}

#[test]
fn cone_search_against_impression_matches_base_distribution() {
    // run fGetNearbyObjEq against base and against an impression and check
    // the impression's (scaled) result is in the right ballpark
    let dataset = SkyDataset::build(DatasetConfig {
        total_objects: 50_000,
        batch_size: 10_000,
        ..DatasetConfig::default()
    })
    .unwrap();
    let fact = dataset.catalog.table("photoobj").unwrap();
    let fact = fact.read();
    let cone = Cone::new(185.0, 0.0, 5.0);
    let base_hits = get_nearby_obj_eq(&fact, "ra", "dec", cone).unwrap().len();

    let config = SciborqConfig::with_layers(vec![5_000]);
    let hierarchy = sciborq_core::LayerHierarchy::build_from_table(
        &fact,
        SamplingPolicy::Uniform,
        &config,
        None,
    )
    .unwrap();
    let impression = &hierarchy.layers()[0];
    let sample_hits = get_nearby_obj_eq(impression.data(), "ra", "dec", cone)
        .unwrap()
        .len();
    let scaled = sample_hits as f64 * 10.0;
    let base = base_hits as f64;
    assert!(
        (scaled - base).abs() / base < 0.3,
        "scaled {scaled} vs base {base_hits}"
    );
}

#[test]
fn grouped_aggregates_on_impressions_match_base_proportions() {
    let dataset = SkyDataset::build(DatasetConfig {
        total_objects: 40_000,
        batch_size: 10_000,
        ..DatasetConfig::default()
    })
    .unwrap();
    let fact = dataset.catalog.table("photoobj").unwrap();
    let fact = fact.read();
    let config = SciborqConfig::with_layers(vec![4_000]);
    let hierarchy = sciborq_core::LayerHierarchy::build_from_table(
        &fact,
        SamplingPolicy::Uniform,
        &config,
        None,
    )
    .unwrap();
    let impression = &hierarchy.layers()[0];

    let base_groups = compute_aggregate(
        &fact,
        None,
        AggregateKind::Count,
        &Predicate::eq("class", "GALAXY").evaluate(&fact).unwrap(),
    )
    .unwrap();
    let base_share = base_groups.value.unwrap() / fact.row_count() as f64;

    let imp_matches = Predicate::eq("class", "GALAXY")
        .evaluate(impression.data())
        .unwrap();
    let imp_share = imp_matches.len() as f64 / impression.row_count() as f64;
    assert!(
        (imp_share - base_share).abs() < 0.05,
        "impression share {imp_share} vs base share {base_share}"
    );
    let _ = SelectionVector::all(1);
}
