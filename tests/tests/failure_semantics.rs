//! Failure-semantics regression tests, run with the `fault-injection`
//! feature OFF (the tier-1 configuration).
//!
//! Two properties of the recovery machinery are only visible from here:
//!
//! * **Feature-off neutrality** — with no fault registry compiled in, no
//!   answer is ever flagged `degraded`, no fault events appear, and no
//!   `Internal` error surfaces. The isolation seams (`catch_unwind`,
//!   deadline-aware admission) are still active — they guard against real
//!   bugs too — but they must be invisible when nothing faults.
//! * **Mutation-storm safety** — concurrent appends, adaptive maintenance
//!   rebuilds and queries must interleave without panics, lost rows, or
//!   statistical drift. This is the regression test for the copy-on-write
//!   rebuild isolation in `ExplorationSession::adapt`.

use sciborq_columnar::{
    Catalog, DataType, Field, Predicate, RecordBatch, RecordBatchBuilder, Schema, SchemaRef, Table,
    Value,
};
use sciborq_core::{ExplorationSession, QueryBounds, QueryOutcome, SamplingPolicy, SciborqConfig};
use sciborq_serve::{QueryServer, ServeConfig, ServerReply};
use sciborq_workload::{AttributeDomain, Query};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn schema() -> SchemaRef {
    Schema::shared(vec![
        Field::new("objid", DataType::Int64),
        Field::new("ra", DataType::Float64),
        Field::new("r_mag", DataType::Float64),
    ])
    .unwrap()
}

fn batch(start: i64, rows: usize) -> RecordBatch {
    let mut b = RecordBatchBuilder::with_capacity(schema(), rows);
    for i in 0..rows as i64 {
        let objid = start + i;
        b.push_row(&[
            Value::Int64(objid),
            Value::Float64((objid * 13 % 3600) as f64 / 10.0),
            Value::Float64(14.0 + (objid % 1_000) as f64 / 125.0),
        ])
        .unwrap();
    }
    b.finish().unwrap()
}

fn session(rows: usize, layers: Vec<usize>) -> ExplorationSession {
    let mut table = Table::new("photoobj", schema());
    table.append_batch(&batch(0, rows)).unwrap();
    let catalog = Catalog::new();
    catalog.register(table).unwrap();
    ExplorationSession::new(
        catalog,
        SciborqConfig::with_layers(layers),
        &[("ra", AttributeDomain::new(0.0, 360.0, 36))],
    )
    .unwrap()
}

/// Concurrent appends + workload-shift queries + adaptive rebuilds. The
/// storm must end with every row accounted for, at least one rebuild
/// performed, every maintenance call typed-`Ok`, and layer statistics
/// still answering within bounds.
#[test]
fn mutation_storm_with_concurrent_maintenance_stays_consistent() {
    let base_rows = 40_000;
    let s = Arc::new(session(base_rows, vec![4_000, 400]));

    // Warm-up: a workload focused on ra ≈ 90, then biased impressions
    // enriched for it — the precondition for adaptive maintenance.
    for _ in 0..30 {
        let q = Query::count("photoobj", Predicate::between("ra", 88.0, 92.0));
        let _ = s.execute(&q, &QueryBounds::default());
    }
    s.create_impressions("photoobj", SamplingPolicy::biased(["ra"]))
        .unwrap();

    // The storm: writers append fresh batches, readers shift the workload
    // focus to ra ≈ 270, and a maintainer runs adapt() throughout.
    let writers = 2;
    let readers = 2;
    let batches_per_writer = 10;
    let batch_rows = 1_000;
    let barrier = Arc::new(Barrier::new(writers + readers + 1));
    let mut handles = Vec::new();
    for w in 0..writers {
        let s = Arc::clone(&s);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            for i in 0..batches_per_writer {
                let start = base_rows as i64
                    + (w as i64 * batches_per_writer as i64 + i as i64) * batch_rows as i64;
                s.load("photoobj", &batch(start, batch_rows)).unwrap();
            }
        }));
    }
    for _ in 0..readers {
        let s = Arc::clone(&s);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            for _ in 0..60 {
                let q = Query::count("photoobj", Predicate::between("ra", 268.0, 272.0));
                let outcome = s.execute(&q, &QueryBounds::default()).unwrap();
                let answer = match outcome {
                    QueryOutcome::Aggregate(a) => a,
                    other => panic!("count returned {other:?}"),
                };
                assert!(!answer.degraded, "feature-off answers never degrade");
                assert!(answer.fault_events.is_empty());
            }
        }));
    }
    let maintainer = {
        let s = Arc::clone(&s);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            barrier.wait();
            for _ in 0..10 {
                // Every maintenance round must come back typed-Ok: with no
                // faults compiled in, a rebuild either happens or is a
                // no-op decision — never an error, never a panic.
                s.adapt().unwrap();
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };
    for handle in handles {
        handle.join().unwrap();
    }
    maintainer.join().unwrap();
    // Settle: with the full shift logged, adaptation must have rebuilt at
    // least once (mid-storm or now).
    s.adapt().unwrap();
    assert!(
        s.rebuilds() >= 1,
        "the workload shift never triggered a rebuild"
    );

    // No row lost: the hierarchy observed every append, and an exact count
    // (base-data fall-through) sees all of them.
    let total = base_rows + writers * batches_per_writer * batch_rows;
    assert_eq!(
        s.hierarchy("photoobj").unwrap().observed_rows(),
        total as u64
    );
    let outcome = s
        .execute(
            &Query::count("photoobj", Predicate::True),
            &QueryBounds::max_error(1e-9),
        )
        .unwrap();
    let exact = outcome.as_aggregate().unwrap();
    assert_eq!(exact.value.unwrap(), total as f64);
    assert!(exact.error_bound_met);

    // Statistical re-assertion: the rebuilt layers still estimate a
    // selective count within a loose bound of the base-data truth.
    let focal = Query::count("photoobj", Predicate::between("ra", 268.0, 272.0));
    let truth = s
        .execute(&focal, &QueryBounds::max_error(1e-9))
        .unwrap()
        .as_aggregate()
        .unwrap()
        .value
        .unwrap();
    let estimate = s
        .execute(&focal, &QueryBounds::max_error(0.5))
        .unwrap()
        .as_aggregate()
        .unwrap()
        .value
        .unwrap();
    assert!(truth > 0.0, "the focal region must be populated");
    assert!(
        (estimate - truth).abs() / truth < 0.75,
        "estimate {estimate} drifted from truth {truth}"
    );
}

/// With the feature off, the serving stack never reports degradation: no
/// `degraded` flags, no fault events, no `Internal` errors, and the fault
/// counters stay at zero (or absent entirely).
#[test]
fn feature_off_serving_never_degrades_or_faults() {
    let serving = session(30_000, vec![3_000, 300]);
    serving
        .create_impressions("photoobj", SamplingPolicy::Uniform)
        .unwrap();
    let server = Arc::new(
        QueryServer::new(
            serving,
            ServeConfig {
                batch_window: Duration::from_millis(2),
                ..ServeConfig::default()
            },
        )
        .unwrap(),
    );
    let clients = 4;
    let barrier = Arc::new(Barrier::new(clients));
    let mut handles = Vec::new();
    for _ in 0..clients {
        let server = Arc::clone(&server);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let queries = vec![
                (
                    Query::count("photoobj", Predicate::lt("ra", 90.0)),
                    QueryBounds::max_error(0.1),
                ),
                (
                    Query::select("photoobj", Predicate::lt("ra", 180.0)).with_limit(5),
                    QueryBounds::default(),
                ),
            ];
            queries
                .into_iter()
                .map(|(q, b)| server.submit(q, b))
                .collect::<Vec<_>>()
        }));
    }
    for handle in handles {
        for reply in handle.join().unwrap() {
            match reply {
                ServerReply::Aggregate { answer, .. } => {
                    assert!(!answer.degraded);
                    assert!(answer.fault_events.is_empty());
                }
                ServerReply::Rows { answer, .. } => {
                    assert!(!answer.degraded);
                    assert!(answer.fault_events.is_empty());
                }
                other => panic!("feature-off reply must be an answer, got {other:?}"),
            }
        }
    }
    let snapshot = server.metrics_snapshot();
    for counter in [
        "engine.internal_faults",
        "engine.fault_recoveries",
        "engine.degraded_queries",
        "serve.scheduler_restarts",
        "serve.batch_faults",
        "serve.admission_faults",
        "serve.admission_timeouts",
    ] {
        assert_eq!(
            snapshot.counter(counter).unwrap_or(0),
            0,
            "{counter} moved without any fault injected"
        );
    }
}
