//! Cross-crate property-based tests on SciBORQ invariants.

use proptest::prelude::*;
use sciborq_columnar::{
    DataType, Field, Predicate, RecordBatchBuilder, Schema, SchemaRef, Table, Value,
};
use sciborq_core::{
    BoundedQueryEngine, LayerHierarchy, QueryBounds, SamplingPolicy, SciborqConfig,
};
use sciborq_sampling::{Reservoir, SamplingStrategy};
use sciborq_stats::{BinnedKde, EquiWidthHistogram};
use sciborq_workload::{AttributeDomain, PredicateSet, Query};

fn schema() -> SchemaRef {
    Schema::shared(vec![
        Field::new("objid", DataType::Int64),
        Field::new("ra", DataType::Float64),
    ])
    .unwrap()
}

fn table_with_ras(ras: &[f64]) -> Table {
    let mut builder = RecordBatchBuilder::with_capacity(schema(), ras.len());
    for (i, &ra) in ras.iter().enumerate() {
        builder
            .push_row(&[Value::Int64(i as i64), Value::Float64(ra)])
            .unwrap();
    }
    let mut table = Table::new("photoobj", schema());
    table.append_batch(&builder.finish().unwrap()).unwrap();
    table
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every layer of a hierarchy respects its configured capacity, and each
    /// derived layer is a subset of the layer above it.
    #[test]
    fn hierarchy_size_and_subset_invariants(
        rows in 100usize..3_000,
        l1 in 50usize..500,
        seed in 0u64..1_000,
    ) {
        let ras: Vec<f64> = (0..rows).map(|i| (i as f64 * 7.3) % 360.0).collect();
        let table = table_with_ras(&ras);
        let l2 = (l1 / 4).max(1);
        let mut config = SciborqConfig::with_layers(vec![l1, l2]);
        config.seed = seed;
        let h = LayerHierarchy::build_from_table(&table, SamplingPolicy::Uniform, &config, None)
            .unwrap();
        prop_assert_eq!(h.layers()[0].row_count(), l1.min(rows));
        prop_assert_eq!(h.layers()[1].row_count(), l2.min(l1.min(rows)));

        let parent_ids: std::collections::HashSet<i64> = {
            let col = h.layers()[0].data().column("objid").unwrap();
            (0..h.layers()[0].row_count()).filter_map(|i| col.get_i64(i)).collect()
        };
        let child = h.layers()[1].data().column("objid").unwrap();
        for i in 0..h.layers()[1].row_count() {
            prop_assert!(parent_ids.contains(&child.get_i64(i).unwrap()));
        }
    }

    /// The bounded engine's COUNT estimate always lies within [0, base rows]
    /// and exact evaluation on the base data matches the true count.
    #[test]
    fn count_estimates_are_bounded_and_exact_on_base(
        rows in 200usize..2_000,
        threshold in 0.0f64..360.0,
    ) {
        let ras: Vec<f64> = (0..rows).map(|i| (i as f64 * 13.7) % 360.0).collect();
        let table = table_with_ras(&ras);
        let config = SciborqConfig::with_layers(vec![(rows / 4).max(1)]);
        let h = LayerHierarchy::build_from_table(&table, SamplingPolicy::Uniform, &config, None)
            .unwrap();
        let engine = BoundedQueryEngine::new(SciborqConfig::default()).unwrap();
        let query = Query::count("photoobj", Predicate::lt("ra", threshold));

        let approx = engine
            .execute_aggregate(&query, &h, Some(&table), &QueryBounds::default())
            .unwrap();
        let value = approx.value.unwrap();
        prop_assert!(value >= -1e-9);
        prop_assert!(value <= rows as f64 + 1e-9);

        let exact = engine
            .execute_aggregate(&query, &h, Some(&table), &QueryBounds::max_error(1e-15))
            .unwrap();
        let truth = ras.iter().filter(|&&r| r < threshold).count() as f64;
        prop_assert_eq!(exact.value.unwrap(), truth);
    }

    /// Predicate-set interest weights are non-negative and integrate to ~N.
    #[test]
    fn predicate_set_weights_are_consistent(
        values in proptest::collection::vec(0.0f64..360.0, 1..300),
    ) {
        let mut ps = PredicateSet::new(&[("ra", AttributeDomain::new(0.0, 360.0, 36))]).unwrap();
        for &v in &values {
            ps.log_value("ra", v);
        }
        let kde = ps.interest_estimator("ra").unwrap();
        prop_assert_eq!(kde.total(), values.len() as f64);
        for x in [0.0, 90.0, 180.0, 270.0, 359.0] {
            prop_assert!(kde.interest_weight(x) >= 0.0);
        }
    }

    /// Reservoir + histogram: the per-bin composition of a large uniform
    /// sample tracks the base composition.
    #[test]
    fn uniform_sample_tracks_base_composition(seed in 0u64..200) {
        let rows = 20_000usize;
        let ras: Vec<f64> = (0..rows).map(|i| ((i * 37) % 360) as f64).collect();
        let mut reservoir = Reservoir::new(2_000, seed);
        for &ra in &ras {
            reservoir.observe(ra);
        }
        let mut base_hist = EquiWidthHistogram::new(0.0, 360.0, 12).unwrap();
        base_hist.observe_all(&ras);
        let mut sample_hist = EquiWidthHistogram::new(0.0, 360.0, 12).unwrap();
        for item in reservoir.sample() {
            sample_hist.observe(item.item);
        }
        let distance = base_hist.frequency_distance(&sample_hist).unwrap();
        prop_assert!(distance < 0.01, "frequency distance {}", distance);
    }

    /// The binned KDE derived from any non-empty histogram is a proper
    /// density: non-negative everywhere and integrating to ≈ 1.
    #[test]
    fn binned_kde_is_a_density(
        values in proptest::collection::vec(0.0f64..100.0, 5..200),
        bins in 4usize..32,
    ) {
        let mut hist = EquiWidthHistogram::new(0.0, 100.0, bins).unwrap();
        hist.observe_all(&values);
        let kde = BinnedKde::from_histogram(&hist).unwrap();
        let integral = sciborq_stats::integrate_density(|x| kde.density(x), -100.0, 200.0, 3000);
        prop_assert!((integral - 1.0).abs() < 0.02, "integral {}", integral);
    }
}
